"""Table I footprint model and the §VI-A derived quantities."""

import pytest

from repro.errors import ConfigError
from repro.shmem.footprint import (
    CPU_RANKS,
    NDP_RANKS,
    footprint_ndft,
    footprint_replicated,
    ndft_reduction_percent,
    ndft_vs_cpu_ratio,
    table1_rows,
)


class TestTable1Exact:
    """The model is calibrated on these four numbers; they must hold to
    rounding precision."""

    def test_ndp_small(self):
        assert footprint_replicated(64, NDP_RANKS) == pytest.approx(4.43, abs=0.01)

    def test_cpu_small(self):
        assert footprint_replicated(64, CPU_RANKS) == pytest.approx(1.84, abs=0.01)

    def test_ndp_large(self):
        assert footprint_replicated(1024, NDP_RANKS) == pytest.approx(35.3, abs=0.05)

    def test_cpu_large(self):
        assert footprint_replicated(1024, CPU_RANKS) == pytest.approx(13.8, abs=0.05)

    def test_percentages(self):
        rows = {r.label: r for r in table1_rows()}
        assert rows["NDP in Small system"].percent_of_memory == pytest.approx(6.92, abs=0.05)
        assert rows["CPU in Small system"].percent_of_memory == pytest.approx(2.88, abs=0.05)
        assert rows["NDP in Large system"].percent_of_memory == pytest.approx(55.15, abs=0.1)
        assert rows["CPU in Large system"].percent_of_memory == pytest.approx(21.56, abs=0.1)

    def test_paper_ratios(self):
        """§III-B: NDP footprint 140.2% / 155.7% above CPU."""
        small = footprint_replicated(64, NDP_RANKS) / footprint_replicated(64, CPU_RANKS)
        large = footprint_replicated(1024, NDP_RANKS) / footprint_replicated(1024, CPU_RANKS)
        assert 100 * (small - 1) == pytest.approx(140.2, abs=2.0)
        assert 100 * (large - 1) == pytest.approx(155.7, abs=2.0)


class TestNdftOptimization:
    def test_reduction_matches_paper(self):
        """§VI-A: 57.8 % reduction in the large system."""
        assert ndft_reduction_percent(1024) == pytest.approx(57.8, abs=0.3)

    def test_vs_cpu_matches_paper(self):
        """§VI-A: within 1.08x of CPU execution."""
        assert ndft_vs_cpu_ratio(1024) == pytest.approx(1.08, abs=0.01)

    def test_ndft_always_below_replicated(self):
        for n_atoms in (16, 64, 256, 1024, 2048):
            assert footprint_ndft(n_atoms) < footprint_replicated(n_atoms, NDP_RANKS)


class TestOom:
    def test_si2048_replicated_ooms(self):
        """§III-B: the per-process approach causes OOM on complex systems;
        with 64 GB, Si_2048 replicated on 128 ranks does not fit."""
        assert footprint_replicated(2048, NDP_RANKS) > 64.0

    def test_si2048_ndft_fits(self):
        assert footprint_ndft(2048) < 64.0

    def test_report_flags_oom(self):
        rows = table1_rows(small_atoms=64, large_atoms=2048)
        ndp_large = next(r for r in rows if r.label == "NDP in Large system")
        assert ndp_large.oom


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            footprint_replicated(0, 8)
        with pytest.raises(ConfigError):
            footprint_replicated(8, 0)
        with pytest.raises(ConfigError):
            footprint_ndft(8, 8, 0)

    def test_monotone_in_atoms_and_ranks(self):
        assert footprint_replicated(128, 24) > footprint_replicated(64, 24)
        assert footprint_replicated(64, 48) > footprint_replicated(64, 24)
