"""Shared-block pack/unpack and the per-rank index table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft.pseudopotential import AtomPseudoBlock
from repro.errors import AllocationError
from repro.shmem.shared_block import (
    SharedBlock,
    SharedBlockTable,
    pack_atom_block,
    unpack_atom_block,
)


def make_block(atom_index=0, n_proj=4, n_pw=16, seed=0):
    rng = np.random.default_rng(seed)
    return AtomPseudoBlock(
        atom_index=atom_index,
        pw_index=np.arange(n_pw, dtype=np.int64),
        projectors_re=rng.normal(size=(n_proj, n_pw)),
        projectors_im=rng.normal(size=(n_proj, n_pw)),
        coupling=rng.normal(size=n_proj),
    )


class TestPackUnpack:
    def test_roundtrip_exact(self):
        block = make_block(atom_index=7)
        restored = unpack_atom_block(pack_atom_block(block))
        assert restored.atom_index == 7
        assert np.array_equal(restored.pw_index, block.pw_index)
        assert np.array_equal(restored.projectors_re, block.projectors_re)
        assert np.array_equal(restored.projectors_im, block.projectors_im)
        assert np.array_equal(restored.coupling, block.coupling)

    def test_rejects_truncated_buffer(self):
        buffer = pack_atom_block(make_block())
        with pytest.raises(AllocationError):
            unpack_atom_block(buffer[:-1])

    def test_rejects_tiny_buffer(self):
        with pytest.raises(AllocationError):
            unpack_atom_block(np.zeros(2))

    @given(
        n_proj=st.integers(1, 6),
        n_pw=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n_proj, n_pw, seed):
        block = make_block(atom_index=seed % 100, n_proj=n_proj, n_pw=n_pw, seed=seed)
        restored = unpack_atom_block(pack_atom_block(block))
        assert np.allclose(restored.projectors, block.projectors)


class TestDescriptor:
    def test_rejects_bad_length(self):
        with pytest.raises(AllocationError):
            SharedBlock(block_id=0, atom_index=0, stack_id=0, offset=0, length=0)

    def test_descriptor_is_small(self):
        block = SharedBlock(block_id=0, atom_index=0, stack_id=0, offset=0, length=4096)
        assert block.descriptor_bytes == 40


class TestTable:
    def test_register_and_lookup(self):
        table = SharedBlockTable()
        block = SharedBlock(block_id=1, atom_index=3, stack_id=0, offset=0, length=64)
        table.register(block)
        assert table.lookup(3) is block
        assert len(table) == 1

    def test_duplicate_rejected(self):
        table = SharedBlockTable()
        block = SharedBlock(block_id=1, atom_index=3, stack_id=0, offset=0, length=64)
        table.register(block)
        with pytest.raises(AllocationError):
            table.register(block)

    def test_missing_lookup(self):
        with pytest.raises(AllocationError):
            SharedBlockTable().lookup(5)

    def test_index_bytes(self):
        table = SharedBlockTable()
        for atom in range(10):
            table.register(
                SharedBlock(block_id=atom, atom_index=atom, stack_id=0, offset=atom * 64, length=64)
            )
        assert table.index_bytes == 10 * 40
