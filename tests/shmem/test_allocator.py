"""First-fit SPM allocator: unit + property-based invariant tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, OutOfMemoryError
from repro.shmem.allocator import SpmAllocator


class TestBasics:
    def test_fresh_allocator_all_free(self):
        alloc = SpmAllocator(capacity=1024)
        assert alloc.free_bytes == 1024
        assert alloc.allocated_bytes == 0
        alloc.check_invariants()

    def test_allocate_and_free_roundtrip(self):
        alloc = SpmAllocator(capacity=1024)
        offset = alloc.allocate(100)
        assert alloc.allocated_bytes == 104  # rounded to alignment
        alloc.free(offset)
        assert alloc.free_bytes == 1024
        assert alloc.largest_free_region == 1024  # coalesced

    def test_alignment(self):
        alloc = SpmAllocator(capacity=1024, alignment=64)
        a = alloc.allocate(1)
        b = alloc.allocate(1)
        assert a % 64 == 0 and b % 64 == 0
        assert b - a == 64

    def test_oom_raises_with_details(self):
        alloc = SpmAllocator(capacity=256)
        alloc.allocate(200)
        with pytest.raises(OutOfMemoryError) as exc:
            alloc.allocate(100)
        assert exc.value.requested >= 100
        assert exc.value.available <= 56

    def test_double_free_rejected(self):
        alloc = SpmAllocator(capacity=256)
        offset = alloc.allocate(10)
        alloc.free(offset)
        with pytest.raises(AllocationError):
            alloc.free(offset)

    def test_zero_allocation_rejected(self):
        with pytest.raises(AllocationError):
            SpmAllocator(capacity=256).allocate(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(AllocationError):
            SpmAllocator(capacity=256, alignment=3)

    def test_coalescing_middle_region(self):
        alloc = SpmAllocator(capacity=320)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        c = alloc.allocate(96)
        alloc.free(a)
        alloc.free(c)
        assert alloc.fragmentation() > 0.0
        alloc.free(b)  # merges everything
        assert alloc.largest_free_region == 320
        assert alloc.fragmentation() == 0.0

    def test_reuse_after_free(self):
        alloc = SpmAllocator(capacity=128)
        offset = alloc.allocate(128)
        alloc.free(offset)
        assert alloc.allocate(128) == offset


class StateMachine:
    """Helper for the property test: mirrors allocations in a dict."""

    def __init__(self, capacity):
        self.alloc = SpmAllocator(capacity=capacity)
        self.live: list[int] = []


@given(
    capacity=st.integers(256, 8192),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 900)), min_size=1, max_size=60
    ),
)
@settings(max_examples=60, deadline=None)
def test_invariants_under_random_workload(capacity, ops):
    """Conservation + no-overlap hold under arbitrary alloc/free sequences."""
    state = StateMachine(capacity)
    for is_alloc, size in ops:
        if is_alloc or not state.live:
            try:
                offset = state.alloc.allocate(size)
                state.live.append(offset)
            except OutOfMemoryError:
                pass
        else:
            victim = state.live.pop(size % len(state.live))
            state.alloc.free(victim)
        state.alloc.check_invariants()
        assert (
            state.alloc.free_bytes + state.alloc.allocated_bytes
            == capacity
        )


@given(sizes=st.lists(st.integers(1, 200), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_free_all_restores_capacity(sizes):
    alloc = SpmAllocator(capacity=16384)
    offsets = []
    for size in sizes:
        try:
            offsets.append(alloc.allocate(size))
        except OutOfMemoryError:
            break
    for offset in offsets:
        alloc.free(offset)
    assert alloc.free_bytes == 16384
    assert alloc.largest_free_region == 16384
