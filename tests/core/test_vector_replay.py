"""The vectorized wave-replay backend and measured backend auto-tuning.

``vector_replay`` (:mod:`repro.hw.vector_replay`, registered in
:mod:`repro.core.backends`) computes a single-signature coalesced
shard's whole FIFO timetable as numpy recurrences over the (replica,
stage-occupancy) grid.  The backend contract pinned here is the one
PRs 3-5 established for the event-driven replays: bit-identical
completion floats *and* bit-identical ``lane_occupancy`` intervals
versus every other backend on any shard it accepts, a reasoned decline
(never a silent approximation) on any shard it cannot prove, and a
forced-unsupported error that names *why*.  The second half covers the
measured :class:`repro.core.executor.BackendTuner`: per-shard wall
timings on the batch report, explore/exploit routing, persistence via
the framework cache snapshot, and — the key property — identical
simulation results regardless of routing.
"""

import random

import pytest

from repro.core.backends import backend_names, get_backend
from repro.core.executor import BackendTuner, PipelineExecutor, ShardTiming
from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.dft.workload import problem_size
from repro.errors import SimulationError

SIZES = (16, 64, 128, 512, 1024)


def _jobs(framework, entries):
    """(pipeline, schedule) pairs resolved through the framework caches,
    so duplicate entries share objects — the coalescing precondition."""
    jobs = []
    for n_atoms, builder in entries:
        pipeline = framework._build_pipeline(problem_size(n_atoms), builder)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))
    return jobs


def _kpoint_builder(n_kpoints):
    def build(problem):
        return build_kpoint_pipeline(problem, n_kpoints)

    return build


def _identical(a, b):
    return (
        a.makespan == b.makespan
        and a.job_reports == b.job_reports
        and a.lane_occupancy == b.lane_occupancy
    )


class TestVectorReplayEquivalence:
    """Bit-identity versus all three existing backends on supported
    shards: closed t=0 batches and ultra-tight arrival jitter, chain
    and k-point templates, across replica counts."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_chain_batches_identical_all_backends(
        self, framework, seed
    ):
        rng = random.Random(seed)
        count = rng.randint(20, 200)
        jobs = _jobs(framework, [(rng.choice(SIZES), build_pipeline)] * count)
        arrivals = None
        if seed % 2:
            # Jitter far inside the first stage wave: supported.
            arrivals = [round(rng.random() * 1e-7, 12) for _ in jobs]
        vector = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="vector_replay"
        )
        assert vector.backend_jobs == {"vector_replay": count}
        assert vector.n_superjobs == 1
        for other in ("chain_replay", "dag_replay", "engine"):
            reference = framework.executor.execute_many(
                jobs, arrivals=arrivals, backend=other
            )
            assert _identical(vector, reference)
        assert vector.lane_occupancy  # the accounting is actually on

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
    def test_random_kpoint_batches_identical(self, framework, seed):
        rng = random.Random(seed)
        count = rng.randint(20, 200)
        builder = _kpoint_builder(rng.choice((2, 3, 4)))
        jobs = _jobs(framework, [(rng.choice(SIZES), builder)] * count)
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 1e-7, 12) for _ in jobs]
        vector = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="vector_replay"
        )
        assert vector.backend_jobs == {"vector_replay": count}
        for other in ("dag_replay", "engine"):
            reference = framework.executor.execute_many(
                jobs, arrivals=arrivals, backend=other
            )
            assert _identical(vector, reference)

    def test_equal_arrival_tie_storm_identical(self, framework):
        """Every replica released at the same instant: every wave is
        wall-to-wall same-instant boundary ties, granted in the
        engine's replica order."""
        jobs = _jobs(framework, [(64, build_pipeline)] * 300)
        arrivals = [0.0] * 300
        vector = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="vector_replay"
        )
        engine = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        assert _identical(vector, engine)

    def test_wide_arrivals_decline_and_auto_falls_back(self, framework):
        """Arrival spread past the first wave makes later replicas'
        entry requests interleave with earlier replicas' downstream
        waves — not a wave order.  Forcing raises the reasoned error;
        auto selection falls back bit-identically."""
        jobs = _jobs(framework, [(64, build_pipeline)] * 60)
        arrivals = [round(i * 0.01, 4) for i in range(60)]
        with pytest.raises(SimulationError, match="same-instant tie"):
            framework.executor.execute_many(
                jobs, arrivals=arrivals, backend="vector_replay"
            )
        auto = framework.executor.execute_many(jobs, arrivals=arrivals)
        engine = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        assert _identical(auto, engine)

    def test_clustered_arrival_ties_decline_identically(self, framework):
        """Two equal-arrival clusters: the second cluster's entry
        requests land mid-backlog, which the wave verification
        refuses; the fallback path must still be exact."""
        jobs = _jobs(framework, [(128, build_pipeline)] * 80)
        arrivals = [0.0] * 40 + [1.0] * 40
        auto = framework.executor.execute_many(jobs, arrivals=arrivals)
        engine = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        assert _identical(auto, engine)


class TestForcedUnsupportedReasons:
    """``execute_many(backend=...)`` on an unsupported shard must say
    *why* — each decline class has its own message."""

    def test_cross_signature_interleaving_reason(self, framework):
        jobs = _jobs(
            framework, [(64, build_pipeline)] * 3 + [(128, build_pipeline)] * 3
        )
        with pytest.raises(
            SimulationError,
            match=r"cross-signature interleaving.*2 super-jobs",
        ):
            framework.executor.execute_many(jobs, backend="vector_replay")

    def test_zero_duration_reason(self):
        from tests.core.test_dag_replay import (
            _round_cost_model,
            _toy_dag,
            _toy_schedule,
        )
        from repro.core.scheduler import Placement

        cost_model = _round_cost_model()
        executor = PipelineExecutor(cost_model=cost_model)
        pipeline = _toy_dag(
            "z", ("a", "b", "c"), (("a", "b", 0.0), ("a", "c", 0.0))
        )
        schedule = _toy_schedule(
            pipeline,
            (Placement.CPU, Placement.CPU, Placement.NDP),
            (1.0, 0.0, 1.0),
            cost_model,
        )
        jobs = [(pipeline, schedule)] * 3
        with pytest.raises(
            SimulationError, match="non-positive duration"
        ):
            executor.execute_many(jobs, backend="vector_replay")
        with pytest.raises(
            SimulationError, match="non-positive duration"
        ):
            executor.execute_many(jobs, backend="dag_replay")

    def test_non_chain_reason(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 2)
        with pytest.raises(
            SimulationError, match="non-chain pipeline"
        ):
            framework.executor.execute_many(jobs, backend="chain_replay")

    def test_tie_interleaving_reason(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 40)
        arrivals = [round(i * 0.01, 4) for i in range(40)]
        with pytest.raises(
            SimulationError, match="same-instant tie"
        ):
            framework.executor.execute_many(
                jobs, arrivals=arrivals, backend="vector_replay"
            )

    def test_observer_rejects_forced_vector_replay(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 2)
        with pytest.raises(
            SimulationError, match="trace observer forces the uncollapsed"
        ):
            framework.executor.execute_many(
                jobs, backend="vector_replay", observer=lambda *args: None
            )


class TestLateDeclineLeavesNoTrace:
    """A decline must have zero side effects: ``simulate`` returns
    ``None`` and the shared lane log is untouched, so the fallback
    backend starts from a clean slate."""

    def test_direct_simulate_decline_keeps_lane_log_clean(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 30)
        arrivals = [round(i * 0.01, 4) for i in range(30)]
        backend = get_backend("vector_replay")
        lane_log = {"sentinel": [(0.0, 1.0)]}
        result = backend.simulate(
            framework.executor, jobs, arrivals, lane_log
        )
        assert result is None
        assert lane_log == {"sentinel": [(0.0, 1.0)]}

    def test_direct_simulate_mixed_signature_decline(self, framework):
        jobs = _jobs(
            framework, [(64, build_pipeline), (128, build_pipeline)]
        )
        backend = get_backend("vector_replay")
        lane_log = {}
        assert not backend.supports(framework.executor, jobs)
        assert (
            backend.simulate(framework.executor, jobs, None, lane_log)
            is None
        )
        assert lane_log == {}


class TestBackendTimings:
    """Per-shard wall observability: ``backend_timings`` rows with
    shard features and the per-backend ``backend_wall_seconds``
    rollup."""

    def test_execute_many_records_shard_timings(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 5)
        report = framework.executor.execute_many(jobs)
        assert len(report.backend_timings) == report.n_shards == 1
        timing = report.backend_timings[0]
        assert isinstance(timing, ShardTiming)
        assert timing.backend == "chain_replay"
        assert timing.wall_seconds > 0.0
        assert timing.n_jobs == 5
        assert timing.n_superjobs == 1
        assert timing.n_stages > 0
        assert timing.is_chain is True

    def test_backend_wall_seconds_rolls_up_by_backend(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 4)
        report = framework.executor.execute_many(jobs)
        wall = report.backend_wall_seconds
        assert set(wall) == {"dag_replay"}
        assert wall["dag_replay"] == sum(
            t.wall_seconds
            for t in report.backend_timings
            if t.backend == "dag_replay"
        )
        assert report.backend_timings[0].is_chain is False

    def test_observer_path_reports_engine_timing(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 3)
        report = framework.executor.execute_many(
            jobs, observer=lambda *args: None
        )
        assert [t.backend for t in report.backend_timings] == ["engine"]
        assert report.backend_wall_seconds["engine"] > 0.0

    def test_framework_backend_stats_include_wall_seconds(self):
        framework = NdftFramework()
        stats = framework.backend_stats
        for name in backend_names():
            assert stats[f"{name}_wall_seconds"] == 0.0
        framework.run_many([64, 128, 512])
        stats = framework.backend_stats
        assert stats["chain_replay_wall_seconds"] > 0.0
        assert stats["engine_wall_seconds"] == 0.0


class TestBackendTuner:
    """Measured routing: explore-then-exploit per size bucket, forced
    and fallback runs recorded, snapshot round-trip, and — the
    contract that makes routing safe — identical results regardless of
    which backend the table picks."""

    def test_bucket_is_job_count_magnitude(self):
        assert BackendTuner.bucket(1) == 1
        assert BackendTuner.bucket(2) == 2
        assert BackendTuner.bucket(1024) == 11
        assert BackendTuner.bucket(65536) == 17

    def test_exploit_routes_to_measured_winner(self, framework):
        """With dag_replay measured as slow and vector_replay as fast
        in the shard's bucket, the tuner routes the shard to
        vector_replay — and the results match the untuned run
        bit for bit."""
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 32)
        bucket = BackendTuner.bucket(len(jobs))
        tuner = BackendTuner()
        tuner.merge(
            [
                (bucket, "dag_replay", 10.0, 32.0),
                (bucket, "vector_replay", 0.001, 32.0),
                (bucket, "chain_replay", 0.5, 32.0),
            ]
        )
        tuned = framework.executor.execute_many(jobs, tuner=tuner)
        assert tuned.backend_jobs == {"vector_replay": 32}
        untuned = framework.executor.execute_many(jobs)
        assert untuned.backend_jobs == {"dag_replay": 32}
        assert _identical(tuned, untuned)

    def test_explore_measures_each_replay_once_per_bucket(self, framework):
        """Fresh table: consecutive identical shards walk through the
        unmeasured replays (static order) before exploiting, and every
        run stays bit-identical."""
        jobs = _jobs(framework, [(64, build_pipeline)] * 16)
        tuner = BackendTuner()
        reference = framework.executor.execute_many(jobs)
        seen = []
        for _ in range(3):
            report = framework.executor.execute_many(jobs, tuner=tuner)
            assert _identical(report, reference)
            (name,) = report.backend_jobs
            seen.append(name)
        assert set(seen) == {"chain_replay", "dag_replay", "vector_replay"}
        bucket = BackendTuner.bucket(len(jobs))
        measured = {
            name for b, name, _w, _j in tuner.snapshot() if b == bucket
        }
        assert measured == {"chain_replay", "dag_replay", "vector_replay"}

    def test_forced_engine_run_is_recorded(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 4)
        tuner = BackendTuner()
        framework.executor.execute_many(jobs, backend="engine", tuner=tuner)
        rows = tuner.snapshot()
        assert [(name, jobs_total) for _b, name, _w, jobs_total in rows] == [
            ("engine", 4.0)
        ]

    def test_snapshot_merge_clear_roundtrip(self):
        tuner = BackendTuner()
        tuner.record(16, "vector_replay", 0.25)
        tuner.record(16, "vector_replay", 0.75)
        tuner.record(3, "engine", 0.5)
        rows = tuner.snapshot()
        assert rows == [
            (2, "engine", 0.5, 3.0),
            (5, "vector_replay", 1.0, 32.0),
        ]
        other = BackendTuner()
        assert other.merge(rows) == 2
        assert other.snapshot() == rows
        # Stale rows for unregistered backends are skipped, not kept.
        assert other.merge([(4, "retired_backend", 1.0, 8.0)]) == 0
        assert other.snapshot() == rows
        other.clear()
        assert other.snapshot() == []

    def test_merge_skips_malformed_rows(self):
        """A corrupt snapshot row (NaN/negative/infinite wall, zero or
        negative job count, wrong arity, non-numeric fields) is skipped
        instead of poisoning the persistent winner table."""
        import math

        bad_rows = [
            (5, "vector_replay", math.nan, 32.0),
            (5, "vector_replay", -1.0, 32.0),
            (5, "vector_replay", math.inf, 32.0),
            (5, "vector_replay", 1.0, 0.0),
            (5, "vector_replay", 1.0, -4.0),
            (5, "vector_replay", 1.0, math.nan),
            (5, "vector_replay", 1.0),  # wrong arity
            (5, "vector_replay", "fast", 32.0),  # non-numeric wall
            ("bucket", "vector_replay", 1.0, 32.0),  # non-numeric bucket
            (5, "retired_backend", 1.0, 32.0),  # unregistered name
        ]
        tuner = BackendTuner()
        assert tuner.merge(bad_rows) == 0
        assert tuner.snapshot() == []
        # Valid rows interleaved with garbage still fold, and a
        # zero-wall row (timer resolution) remains legal.
        mixed = [
            (5, "vector_replay", 1.0, 32.0),
            (5, "vector_replay", math.nan, 32.0),
            (5, "chain_replay", 0.0, 16.0),
        ]
        assert tuner.merge(mixed) == 2
        assert tuner.snapshot() == [
            (5, "chain_replay", 0.0, 16.0),
            (5, "vector_replay", 1.0, 32.0),
        ]

    def test_framework_persists_tuner_across_save_load(self, tmp_path):
        first = NdftFramework()
        first.run_many([64, 128, 512])
        rows = first._backend_tuner.snapshot()
        assert rows  # run_many measured at least one shard
        path = first.save_caches(tmp_path / "caches.json")
        second = NdftFramework()
        assert second._backend_tuner.snapshot() == []
        second.load_caches(path)
        assert second._backend_tuner.snapshot() == rows

    def test_routing_never_changes_results(self):
        """The auto-tuning determinism contract: two frameworks — one
        cold, one with a deliberately skewed warmed winner table —
        produce identical batch results for the same workload."""
        sizes = [64, 128] * 12
        cold = NdftFramework()
        cold_result = cold.run_many(sizes)
        warmed = NdftFramework()
        warmed._backend_tuner.merge(
            [
                (BackendTuner.bucket(len(sizes)), "dag_replay", 0.0001, 24.0),
                (BackendTuner.bucket(len(sizes)), "chain_replay", 99.0, 24.0),
                (
                    BackendTuner.bucket(len(sizes)),
                    "vector_replay",
                    50.0,
                    24.0,
                ),
            ]
        )
        warmed_result = warmed.run_many(sizes)
        assert cold_result.makespan == warmed_result.makespan
        assert cold_result.solo_times == warmed_result.solo_times
        assert (
            cold_result.batch_report.job_reports
            == warmed_result.batch_report.job_reports
        )
        assert (
            cold_result.batch_report.lane_occupancy
            == warmed_result.batch_report.lane_occupancy
        )


class TestRegistryOrder:
    def test_vector_replay_registered_after_dag_replay(self):
        names = backend_names()
        assert names[-1] == "engine"
        assert names.index("chain_replay") < names.index("dag_replay")
        assert names.index("dag_replay") < names.index("vector_replay")
        assert "vector_replay" in names
