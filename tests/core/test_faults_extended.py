"""Correlated shocks, partial degradation, and checkpoint/resume.

The contracts pinned here, on top of ``test_faults.py``'s foundation:

- **correlated shocks** — :func:`shock_fault_plan` draws fleet-level
  events on one shared clock: every lane of the struck group gets the
  *same* outage window, the draw is seeded-deterministic and independent
  of group/lane input order, and the plan composes with independent
  Poisson windows via :meth:`FaultPlan.merge` (digest and descriptor
  describe the composed timeline);
- **partial degradation** — :class:`SlowdownWindow` inflates service
  time piecewise instead of killing the job; the replay backends decline
  slowdown-affected shards with their own named reason
  (:data:`SLOWDOWN_SHARD_REASON`), and a plan whose slowdowns never
  overlap any service is bit-identical to no plan at all;
- **checkpoint/resume** — ``RetryPolicy(checkpoint=True)`` re-enters a
  failed job as the residual pipeline past its completed-stage frontier:
  ``work_saved_seconds > 0`` on a constructed mid-pipeline failure,
  bit-identical results when nothing fails, deterministic frontiers
  across frameworks and repeated calls;
- **backoff_max** — the exponential backoff clamps instead of growing
  (or overflowing) without bound;
- **poisson statistical sanity** — over a long horizon the drawn
  up/down times converge to MTBF/MTTR and windows never overlap.
"""

import argparse

import pytest

from repro.cli import _fault_setup
from repro.core.backends import FAULTED_SHARD_REASON, SLOWDOWN_SHARD_REASON
from repro.core.faults import (
    FaultPlan,
    RetryPolicy,
    SlowdownWindow,
    poisson_fault_plan,
    shock_fault_plan,
    slowdown_fault_plan,
)
from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.dft.workload import problem_size
from repro.errors import ConfigError, SimulationError
from repro.hw.engine import inflate_service, resolve_degraded_service

SIZES = [64, 128, 512, 1024]
BACKENDS = ["chain_replay", "dag_replay", "vector_replay", "engine"]


def _jobs(framework, entries):
    jobs = []
    for n_atoms in entries:
        pipeline = framework._build_pipeline(problem_size(n_atoms), build_pipeline)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))
    return jobs


def _identical_batches(a, b):
    return (
        a.makespan == b.makespan
        and a.job_reports == b.job_reports
        and a.lane_occupancy == b.lane_occupancy
        and a.arrivals == b.arrivals
    )


def _ndp_window(framework, sizes, width_fraction=0.2):
    """A window guaranteed to start strictly inside an ndp service
    interval of the healthy batch (mirrors test_faults.py)."""
    healthy = framework.run_many(sizes)
    intervals = healthy.batch_report.lane_occupancy["ndp"]
    start, end = max(intervals, key=lambda span: span[1] - span[0])
    t0 = start + (end - start) * 0.5
    return healthy, t0, t0 + healthy.makespan * width_fraction


class TestShockFaultPlan:
    def test_every_lane_of_struck_group_shares_the_window(self):
        plan = shock_fault_plan(
            [("ndp", "link:cpu-ndp")], rate=0.5, mttr=1.0, horizon=40.0, seed=3
        )
        assert not plan.is_empty
        ndp = plan.windows_for("ndp")
        wire = plan.windows_for("link:cpu-ndp")
        # One shared clock: the group's lanes carry identical windows —
        # same starts, same repair draws.  (Normalization may merge
        # overlapping shocks, but it merges both lanes identically.)
        assert ndp == wire
        assert ndp  # the draw actually produced shocks at this rate

    def test_deterministic_and_input_order_independent(self):
        kwargs = dict(rate=0.3, mttr=0.5, horizon=60.0, seed=11)
        one = shock_fault_plan([("ndp", "link:cpu-ndp"), "cpu"], **kwargs)
        two = shock_fault_plan(["cpu", ("link:cpu-ndp", "ndp")], **kwargs)
        assert one == two
        assert one.digest() == two.digest()
        assert one.shock_groups == (("cpu",), ("link:cpu-ndp", "ndp"))
        other = shock_fault_plan(
            [("ndp", "link:cpu-ndp"), "cpu"], **dict(kwargs, seed=12)
        )
        assert one.digest() != other.digest()

    def test_validation(self):
        with pytest.raises(ConfigError, match="rate"):
            shock_fault_plan(["ndp"], rate=0.0, mttr=1.0, horizon=10.0)
        with pytest.raises(ConfigError, match="mttr"):
            shock_fault_plan(["ndp"], rate=1.0, mttr=0.0, horizon=10.0)
        with pytest.raises(ConfigError, match="horizon"):
            shock_fault_plan(["ndp"], rate=1.0, mttr=1.0, horizon=0.0)
        with pytest.raises(ConfigError):
            shock_fault_plan([], rate=1.0, mttr=1.0, horizon=10.0)

    def test_merge_composes_with_poisson_noise(self):
        noise = poisson_fault_plan(
            ["ndp"], mtbf=5.0, mttr=0.5, horizon=60.0, seed=7
        )
        shocks = shock_fault_plan(
            [("ndp", "link:cpu-ndp")], rate=0.1, mttr=2.0, horizon=60.0, seed=7
        )
        merged = noise.merge(shocks)
        # The composed timeline covers both shapes, re-normalized.
        assert merged.lanes == noise.lanes | shocks.lanes
        assert merged.digest() != noise.digest()
        assert merged.digest() != shocks.digest()
        # Merge order does not matter: same normalized timeline.
        assert merged.digest() == shocks.merge(noise).digest()
        # Unambiguous metadata survives (same seed/mttr/horizon); the
        # shock provenance rides through untouched.
        assert merged.seed == 7
        assert merged.horizon == 60.0
        assert merged.shock_rate == 0.1
        assert merged.shock_groups == shocks.shock_groups
        descriptor = merged.to_json_dict()
        assert descriptor["shock_rate"] == 0.1
        assert descriptor["shock_groups"] == [["link:cpu-ndp", "ndp"]]
        assert descriptor["digest"] == merged.digest()

    def test_merge_drops_ambiguous_metadata(self):
        a = poisson_fault_plan(["ndp"], mtbf=5.0, mttr=0.5, horizon=60.0, seed=1)
        b = poisson_fault_plan(["cpu"], mtbf=9.0, mttr=0.5, horizon=60.0, seed=2)
        merged = a.merge(b)
        assert merged.seed is None
        assert merged.mtbf is None
        assert merged.mttr == 0.5

    def test_correlated_shock_kills_jobs_as_a_fleet_event(self, framework):
        """A shock window covering both the ndp device and its wire is
        survivable end to end: jobs killed at the shock instant retry
        and recover once the group is back."""
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(
            outages=(
                ("ndp", t0, t1),
                ("link:cpu-ndp", t0, t1),
            ),
            shock_rate=1.0,
            shock_groups=(("link:cpu-ndp", "ndp"),),
        )
        result = framework.run_many(SIZES, faults=plan)
        res = result.resilience
        assert res.failed_attempts >= 1
        assert res.availability == 1.0
        assert all(
            r.failure_time == t0 for r in res.attempts if not r.completed
        )


class TestSlowdownWindows:
    def test_validation(self):
        with pytest.raises(ConfigError, match="factor"):
            SlowdownWindow("ndp", 0.0, 1.0, 1.0)
        with pytest.raises(ConfigError, match="0 <= start < end"):
            SlowdownWindow("ndp", 2.0, 2.0, 1.5)
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(
                slowdowns=(("ndp", 0.0, 2.0, 2.0), ("ndp", 1.0, 3.0, 4.0))
            )

    def test_plan_queries(self):
        plan = FaultPlan(
            slowdowns=(("ndp", 1.0, 2.0, 2.0), ("cpu", 0.0, 1.0, 1.5))
        )
        assert not plan.is_empty
        assert plan.lanes == frozenset({"ndp", "cpu"})
        assert plan.slowdown_lanes() == frozenset({"ndp", "cpu"})
        assert plan.slowdowns_for("ndp") == ((1.0, 2.0, 2.0),)
        assert plan.affects(["ndp"])
        assert not plan.affects_lethally(["ndp", "cpu"])
        # Slowdowns never kill, so they contribute no retry instants.
        assert plan.event_times() == ()

    def test_slowdown_fault_plan_deterministic(self):
        kwargs = dict(mtbf=5.0, mttr=0.5, horizon=60.0, factor=2.0, seed=4)
        one = slowdown_fault_plan(["ndp", "cpu"], **kwargs)
        two = slowdown_fault_plan(["cpu", "ndp"], **kwargs)
        assert one == two
        assert one.slowdowns
        assert all(w.factor == 2.0 for w in one.slowdowns)
        with pytest.raises(ConfigError, match="factor"):
            slowdown_fault_plan(["ndp"], mtbf=5.0, mttr=0.5, horizon=60.0,
                                factor=1.0)

    def test_digest_backward_stable_without_slowdowns(self):
        """A slowdown-free plan hashes exactly what it did before
        slowdowns existed — committed benchmark descriptors stay valid —
        while any slowdown moves the digest."""
        bare = FaultPlan(outages=(("ndp", 1.0, 2.0),))
        with_slow = FaultPlan(
            outages=(("ndp", 1.0, 2.0),),
            slowdowns=(("ndp", 3.0, 4.0, 2.0),),
        )
        assert bare.digest() != with_slow.digest()
        other_factor = FaultPlan(
            outages=(("ndp", 1.0, 2.0),),
            slowdowns=(("ndp", 3.0, 4.0, 2.5),),
        )
        assert with_slow.digest() != other_factor.digest()


class TestInflateServiceKernel:
    def test_no_overlap_returns_exact_duration(self):
        # Bit-identity contract: the accumulator never moves, so the
        # result is exactly `0.0 + duration` — the same float.
        assert inflate_service((), 3.0, 2.0) == 2.0
        assert inflate_service(((10.0, 20.0, 2.0),), 3.0, 2.0) == 2.0
        assert inflate_service(((0.0, 3.0, 2.0),), 3.0, 2.0) == 2.0

    def test_service_entirely_inside_window_scales_by_factor(self):
        assert inflate_service(((2.0, 6.0, 2.0),), 3.0, 1.0) == 2.0

    def test_service_spanning_window_boundary_is_piecewise(self):
        # 2s healthy, then the remaining 2s of work at factor 2 -> 4s.
        assert inflate_service(((2.0, 6.0, 2.0),), 0.0, 4.0) == 6.0

    def test_service_outlasting_window_resumes_full_speed(self):
        # 2s healthy + window (2,4) at factor 2 absorbs 1s of work over
        # 2s of wall + 7s full speed after the window.
        assert inflate_service(((2.0, 4.0, 2.0),), 0.0, 10.0) == 11.0

    def test_chained_windows_accumulate(self):
        slowdowns = ((1.0, 2.0, 2.0), (3.0, 4.0, 4.0))
        # 1s healthy, 0.5s work over the 1s window, 1s healthy, then
        # 0.25s of work over the second window, 0.25s remaining after.
        assert inflate_service(slowdowns, 0.0, 3.0) == pytest.approx(4.25)

    def test_slowdown_pushes_service_into_outage(self):
        """The kill check runs against the *inflated* span: a service
        that would clear the outage at full speed dies when a slowdown
        stretches it across the window start."""
        windows = ((5.0, 6.0),)
        slowdowns = ((0.0, 10.0, 2.0),)
        service, wall, fail, kind = resolve_degraded_service(
            windows, (), None, 3.0, 1.5
        )
        assert (service, wall, fail, kind) == (3.0, 1.5, None, None)
        service, wall, fail, kind = resolve_degraded_service(
            windows, slowdowns, None, 3.0, 1.5
        )
        assert (service, wall, fail, kind) == (3.0, 3.0, 5.0, "outage")

    def test_slowdown_counts_against_permanent_death(self):
        service, wall, fail, kind = resolve_degraded_service(
            (), ((0.0, 10.0, 2.0),), 5.0, 3.0, 1.5
        )
        assert (service, wall, fail, kind) == (3.0, 3.0, 5.0, "permanent")

    def test_inflation_starts_after_waited_out_outage(self):
        """Waiting out an outage moves the service start; the slowdown
        inflation must be computed from the post-wait start."""
        windows = ((1.0, 4.0),)
        slowdowns = ((4.0, 5.0, 2.0),)
        service, wall, fail, kind = resolve_degraded_service(
            windows, slowdowns, None, 2.0, 1.0
        )
        assert service == 4.0
        # 1s of wall inside the factor-2 window absorbs 0.5s of work;
        # the remaining 0.5s finishes at full speed after it.
        assert wall == 1.5
        assert fail is None and kind is None


class TestSlowdownEndToEnd:
    def test_slowdown_inflates_without_killing(self, framework):
        healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(slowdowns=(("ndp", t0, t1, 3.0),))
        result = framework.run_many(SIZES, faults=plan)
        res = result.resilience
        assert res.failed_attempts == 0
        assert res.availability == 1.0
        assert res.total_attempts == res.submitted
        assert result.makespan > healthy.makespan
        # Only the fault-aware engine can simulate the inflation.
        assert set(result.batch_report.backend_jobs) == {"engine"}

    def test_replays_decline_slowdown_shards_with_named_reason(self, framework):
        jobs = _jobs(framework, [64] * 4)
        slow_only = FaultPlan(slowdowns=(("ndp", 0.0, 1.0, 2.0),))
        lethal_too = FaultPlan(
            outages=(("ndp", 0.0, 1.0),),
            slowdowns=(("ndp", 2.0, 3.0, 2.0),),
        )
        for backend in ("chain_replay", "dag_replay", "vector_replay"):
            with pytest.raises(SimulationError) as excinfo:
                framework.executor.execute_many(
                    jobs, backend=backend, faults=slow_only
                )
            assert SLOWDOWN_SHARD_REASON in str(excinfo.value)
            # A shard with any job-killing event declines with the
            # original fault reason, not the slowdown one.
            with pytest.raises(SimulationError) as excinfo:
                framework.executor.execute_many(
                    jobs, backend=backend, faults=lethal_too
                )
            assert FAULTED_SHARD_REASON in str(excinfo.value)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_untouched_lane_slowdowns_bit_identical(self, framework, backend):
        """Slowdowns on a lane the batch never occupies leave every
        forced backend on its normal path with identical floats."""
        sizes = [64] * 12
        plan = FaultPlan(slowdowns=(("gpu", 0.0, 1e9, 4.0),))
        plain = framework.run_many(sizes, backend=backend)
        slowed = framework.run_many(sizes, backend=backend, faults=plan)
        assert _identical_batches(plain.batch_report, slowed.batch_report)
        assert slowed.resilience.availability == 1.0

    def test_non_overlapping_slowdowns_bit_identical_on_engine(self, framework):
        """A slowdown window that never overlaps any service must not
        move a single float, even though the shard routes through the
        fault-aware engine path (`0.0 + duration` is exactly
        `duration`)."""
        healthy = framework.run_many(SIZES)
        far_future = healthy.makespan * 1e3
        plan = FaultPlan(slowdowns=(("ndp", far_future, far_future + 1.0, 2.0),))
        slowed = framework.run_many(SIZES, faults=plan)
        assert _identical_batches(healthy.batch_report, slowed.batch_report)
        assert set(slowed.batch_report.backend_jobs) == {"engine"}

    def test_slowdown_determinism_across_frameworks(self):
        plan = slowdown_fault_plan(
            ["ndp"], mtbf=0.002, mttr=0.005, horizon=1.0, factor=2.0, seed=5
        )
        a = NdftFramework().run_many(SIZES, faults=plan)
        b = NdftFramework().run_many(SIZES, faults=plan)
        assert _identical_batches(a.batch_report, b.batch_report)
        assert a.resilience.to_json_dict() == b.resilience.to_json_dict()


class TestCheckpointResume:
    def test_resume_saves_work_on_mid_pipeline_failure(self, framework):
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        plain = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(max_attempts=4)
        )
        resumed = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(max_attempts=4, checkpoint=True)
        )
        assert plain.resilience.work_saved_seconds == 0.0
        assert plain.resilience.resumed_stages == 0
        res = resumed.resilience
        assert res.availability == 1.0
        assert res.resumed_attempts >= 1
        assert res.resumed_stages >= 1
        assert res.work_saved_seconds > 0.0
        # Each resumed attempt skipped exactly its frontier, valued at
        # the base schedule's stage times.
        for record in res.attempts:
            if record.frontier:
                assert record.attempt > 1
                assert record.work_saved > 0.0
            else:
                assert record.work_saved == 0.0
        descriptor = res.to_json_dict()
        assert descriptor["resumed_stages"] == res.resumed_stages
        assert descriptor["work_saved_seconds"] == res.work_saved_seconds

    def test_frontier_covers_stages_completed_before_failure(self, framework):
        """The recorded frontier is a downward-closed prefix of the
        chain: everything strictly upstream of the failing stage."""
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        res = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(checkpoint=True)
        ).resilience
        resumed = [r for r in res.attempts if r.frontier]
        assert resumed
        for record in resumed:
            pipeline = build_pipeline(problem_size(SIZES[record.job_index]))
            order = pipeline.topological_order
            # Downward-closed in the chain: the frontier is exactly the
            # first len(frontier) stages of the topological order.
            assert set(record.frontier) == set(order[: len(record.frontier)])

    def test_no_failure_means_no_change(self, framework):
        """checkpoint=True must be invisible when nothing fails."""
        plan = FaultPlan(outages=(("gpu", 0.0, 1e9),))
        plain = framework.run_many(SIZES, faults=plan, retry=RetryPolicy())
        checkpointed = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(checkpoint=True)
        )
        assert _identical_batches(
            plain.batch_report, checkpointed.batch_report
        )
        assert checkpointed.resilience.resumed_stages == 0
        assert checkpointed.resilience.work_saved_seconds == 0.0

    def test_resume_deterministic_across_frameworks_and_calls(self):
        plan = poisson_fault_plan(
            ["ndp"], mtbf=0.005, mttr=0.002, horizon=1.0, seed=9
        )
        retry = RetryPolicy(max_attempts=5, checkpoint=True)

        def frontiers(result):
            return [
                (r.job_index, r.attempt, r.frontier, r.work_saved)
                for r in result.resilience.attempts
            ]

        fresh_a = NdftFramework().run_many(SIZES, faults=plan, retry=retry)
        fresh_b = NdftFramework().run_many(SIZES, faults=plan, retry=retry)
        assert frontiers(fresh_a) == frontiers(fresh_b)
        assert _identical_batches(fresh_a.batch_report, fresh_b.batch_report)
        repeat = NdftFramework()
        first = repeat.run_many(SIZES, faults=plan, retry=retry)
        second = repeat.run_many(SIZES, faults=plan, retry=retry)
        assert frontiers(first) == frontiers(second)
        assert _identical_batches(first.batch_report, second.batch_report)

    def test_resume_on_branching_pipeline(self, framework):
        """Checkpoint/resume through the DAG (k-point) pipeline: the
        residual subgraph schedules and completes."""
        healthy = framework.run_many(
            [256] * 4, pipeline_builder=build_kpoint_pipeline
        )
        intervals = healthy.batch_report.lane_occupancy["ndp"]
        start, end = max(intervals, key=lambda span: span[1] - span[0])
        t0 = start + (end - start) * 0.5
        plan = FaultPlan(outages=(("ndp", t0, t0 + healthy.makespan),))
        result = framework.run_many(
            [256] * 4,
            pipeline_builder=build_kpoint_pipeline,
            faults=plan,
            retry=RetryPolicy(max_attempts=4, checkpoint=True),
        )
        res = result.resilience
        assert res.availability == 1.0
        assert res.work_saved_seconds > 0.0

    def test_residual_pipeline_builder(self):
        pipeline = build_pipeline(problem_size(64))
        order = pipeline.topological_order
        residual = pipeline.residual(order[:2])
        assert residual.topological_order == order[2:]
        assert all(
            e.src not in order[:2] and e.dst not in order[:2]
            for e in residual.edges
        )
        assert residual.structural_hash != pipeline.structural_hash
        # Empty frontier is the identity (same object, caches shared).
        assert pipeline.residual(()) is pipeline
        with pytest.raises(ConfigError, match="unknown stages"):
            pipeline.residual(("nonesuch",))
        with pytest.raises(ConfigError, match="nothing to resume"):
            pipeline.residual(order)


class TestBackoffMax:
    def test_backoff_clamps_at_cap(self):
        retry = RetryPolicy(
            max_attempts=6, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.4
        )
        assert retry.backoff(1) == pytest.approx(0.1)
        assert retry.backoff(2) == pytest.approx(0.2)
        # Boundary: the cap itself is reachable, not overshot.
        assert retry.backoff(3) == 0.4
        assert retry.backoff(4) == 0.4
        assert retry.backoff(6) == 0.4

    def test_backoff_max_absorbs_overflow(self):
        retry = RetryPolicy(
            max_attempts=500, backoff_factor=10.0, backoff_max=5.0
        )
        # 0.1 * 10**499 overflows to inf without the clamp.
        assert retry.backoff(500) == 5.0

    def test_validation(self):
        with pytest.raises(ConfigError, match="backoff_max"):
            RetryPolicy(backoff_base=1.0, backoff_max=0.5)
        assert RetryPolicy(backoff_base=1.0, backoff_max=1.0).backoff(9) == 1.0

    def test_descriptor_roundtrip(self):
        retry = RetryPolicy(backoff_max=2.5, checkpoint=True)
        descriptor = retry.to_json_dict()
        assert descriptor["backoff_max"] == 2.5
        assert descriptor["checkpoint"] is True


class TestPoissonStatisticalSanity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_empirical_means_converge_to_mtbf_mttr(self, seed):
        mtbf, mttr = 4.0, 0.5
        plan = poisson_fault_plan(
            ["ndp"], mtbf=mtbf, mttr=mttr, horizon=50_000.0, seed=seed
        )
        spans = plan.windows_for("ndp")
        assert len(spans) > 1_000
        downs = [end - start for start, end in spans]
        ups = [
            spans[0][0],
            *(nxt[0] - prev[1] for prev, nxt in zip(spans, spans[1:])),
        ]
        mean_down = sum(downs) / len(downs)
        mean_up = sum(ups) / len(ups)
        # ~10k exponential draws: the sample mean sits within a few
        # percent of the parameter; 10% tolerance keeps this stable for
        # any seed while still catching a mis-parameterized draw.
        assert mean_up == pytest.approx(mtbf, rel=0.10)
        assert mean_down == pytest.approx(mttr, rel=0.10)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_windows_never_overlap_post_normalization(self, seed):
        plan = poisson_fault_plan(
            ["ndp", "cpu"],
            mtbf=0.5,
            mttr=2.0,  # repairs longer than time-to-failure: dense draw
            horizon=5_000.0,
            seed=seed,
        )
        for lane in ("ndp", "cpu"):
            spans = plan.windows_for(lane)
            for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
                assert s0 < e0
                assert e0 <= s1  # sorted, disjoint


class TestCliFaultSetup:
    @staticmethod
    def _args(**overrides):
        defaults = dict(
            mtbf=None,
            mttr=1.0,
            fault_seed=0,
            fault_horizon=60.0,
            fault_lanes=["ndp"],
            shock_rate=None,
            shock_groups=None,
            slowdown_factor=None,
            checkpoint=False,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_no_flags_means_no_plan(self, framework):
        assert _fault_setup(self._args(), framework) == (None, None)

    def test_unknown_fault_lane_rejected_with_valid_set(self, framework):
        with pytest.raises(ConfigError) as excinfo:
            _fault_setup(
                self._args(mtbf=10.0, fault_lanes=["ndp", "npu"]), framework
            )
        message = str(excinfo.value)
        assert "'npu'" in message
        for lane in framework.fault_lanes():
            assert lane in message

    def test_unknown_shock_group_lane_rejected(self, framework):
        with pytest.raises(ConfigError, match="nvlink"):
            _fault_setup(
                self._args(shock_rate=0.1, shock_groups=["ndp,nvlink"]),
                framework,
            )

    def test_composed_flags_build_merged_plan(self, framework):
        plan, retry = _fault_setup(
            self._args(
                mtbf=10.0,
                shock_rate=0.2,
                slowdown_factor=2.0,
                checkpoint=True,
            ),
            framework,
        )
        assert plan.windows_for("ndp")
        assert plan.shock_rate == 0.2
        assert plan.shock_groups == (framework.fault_lanes(),)
        assert plan.slowdowns
        assert retry.checkpoint is True

    def test_checkpoint_without_faults_rejected(self, framework):
        with pytest.raises(ConfigError, match="--checkpoint"):
            _fault_setup(self._args(checkpoint=True), framework)

    def test_fault_lanes_lists_targets_and_wires(self, framework):
        lanes = framework.fault_lanes()
        assert "cpu" in lanes and "ndp" in lanes
        assert "link:cpu-ndp" in lanes
        assert lanes == tuple(sorted(lanes))
