"""Eq. 1 cost model, the cost-aware scheduler and its policies."""

import itertools

import pytest

from repro.core.cost_model import OffloadCostModel
from repro.core.pipeline import build_pipeline
from repro.core.scheduler import (
    GRANULARITY_CROSSINGS_PER_STAGE,
    Placement,
    SchedulingPolicy,
    best_homogeneous_schedule,
    granularity_overheads,
)
from repro.dft.workload import problem_size
from repro.errors import SchedulingError
from repro.hw.interconnect import HostLink
from repro.model import PhaseName


@pytest.fixture(scope="module")
def pipeline():
    return build_pipeline(problem_size(64))


@pytest.fixture(scope="module")
def pipeline_large():
    return build_pipeline(problem_size(1024))


@pytest.fixture(scope="module")
def scheduler(framework):
    return framework.scheduler


class TestCostModel:
    def test_eq1_is_sum_of_dt_plus_cxt(self):
        model = OffloadCostModel(
            host_link=HostLink(bandwidth=64e9, base_latency=0.0),
            context_switch=1e-4,
        )
        edges = [64e9, 32e9]  # 1 s + 0.5 s of DT
        overhead = model.schedule_overhead(edges)
        assert overhead == pytest.approx(1.5 + 2e-4)

    def test_empty_schedule_free(self):
        model = OffloadCostModel(
            host_link=HostLink(bandwidth=64e9), context_switch=1e-4
        )
        assert model.schedule_overhead([]) == 0.0


class TestPolicies:
    def test_all_cpu_has_no_boundaries(self, scheduler, pipeline):
        schedule = scheduler.schedule(pipeline, SchedulingPolicy.ALL_CPU)
        assert schedule.n_boundaries == 0
        assert schedule.scheduling_overhead == 0.0
        assert set(schedule.assignments.values()) == {Placement.CPU}

    def test_all_ndp_has_no_boundaries(self, scheduler, pipeline):
        schedule = scheduler.schedule(pipeline, SchedulingPolicy.ALL_NDP)
        assert schedule.n_boundaries == 0
        assert set(schedule.assignments.values()) == {Placement.NDP}

    def test_cost_aware_beats_homogeneous(self, scheduler, pipeline_large):
        cost_aware = scheduler.schedule(pipeline_large, SchedulingPolicy.COST_AWARE)
        all_cpu = scheduler.schedule(pipeline_large, SchedulingPolicy.ALL_CPU)
        all_ndp = scheduler.schedule(pipeline_large, SchedulingPolicy.ALL_NDP)
        assert cost_aware.predicted_total < all_cpu.predicted_total
        assert cost_aware.predicted_total < all_ndp.predicted_total

    def test_cost_aware_is_exhaustive_optimum(self, scheduler, pipeline):
        """Brute-force check against every assignment."""
        best = min(
            scheduler.evaluate(
                pipeline, dict(zip(pipeline.stage_names, choices))
            ).predicted_total
            for choices in itertools.product(
                (Placement.CPU, Placement.NDP), repeat=len(pipeline.stage_names)
            )
        )
        schedule = scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        assert schedule.predicted_total == pytest.approx(best)

    def test_paper_placement_large(self, scheduler, pipeline_large):
        """The paper's split: memory-bound kernels on NDP, GEMM/SYEVD on
        the host CPU (for the large system)."""
        schedule = scheduler.schedule(pipeline_large, SchedulingPolicy.COST_AWARE)
        a = schedule.assignments
        assert a[str(PhaseName.FFT)] is Placement.NDP
        assert a[str(PhaseName.FACE_SPLIT)] is Placement.NDP
        assert a[str(PhaseName.GLOBAL_COMM)] is Placement.NDP
        assert a[str(PhaseName.PSEUDOPOTENTIAL)] is Placement.NDP
        assert a[str(PhaseName.GEMM)] is Placement.CPU
        assert a[str(PhaseName.SYEVD)] is Placement.CPU

    def test_naive_ignores_transfers(self, scheduler, pipeline):
        naive = scheduler.schedule(pipeline, SchedulingPolicy.NAIVE)
        for name in pipeline.stage_names:
            cpu_t = scheduler.stage_time(pipeline, name, Placement.CPU).total
            ndp_t = scheduler.stage_time(pipeline, name, Placement.NDP).total
            expected = Placement.CPU if cpu_t <= ndp_t else Placement.NDP
            assert naive.assignments[name] is expected

    def test_missing_stage_rejected(self, scheduler, pipeline):
        with pytest.raises(SchedulingError):
            scheduler.evaluate(pipeline, {"fft": Placement.CPU})

    def test_overhead_fraction_in_paper_band(self, scheduler, pipeline_large):
        schedule = scheduler.schedule(pipeline_large, SchedulingPolicy.COST_AWARE)
        assert 0.01 < schedule.overhead_fraction < 0.10


class TestGranularity:
    def test_function_granularity_cheapest_heterogeneous(self, scheduler, pipeline):
        overheads = granularity_overheads(pipeline, scheduler)
        assert overheads["kernel"] == 0.0
        assert (
            overheads["function"]
            < overheads["basic_block"]
            < overheads["instruction"]
        )

    def test_instruction_granularity_orders_of_magnitude_worse(
        self, scheduler, pipeline
    ):
        overheads = granularity_overheads(pipeline, scheduler)
        assert overheads["instruction"] > 50 * overheads["function"]

    def test_crossing_table_shape(self):
        assert GRANULARITY_CROSSINGS_PER_STAGE["function"] == 1
        assert GRANULARITY_CROSSINGS_PER_STAGE["kernel"] == 0

    def test_kernel_charged_as_best_homogeneous_schedule(
        self, scheduler, pipeline_large
    ):
        """Whole-kernel offload is charged as the cheapest single-target
        placement (as the docstring promises): its Eq. 1 overhead is that
        schedule's overhead — zero by construction, since a homogeneous
        placement crosses no boundary — while the forfeited heterogeneity
        shows up in the homogeneous schedule's higher predicted total."""
        overheads = granularity_overheads(pipeline_large, scheduler)
        homogeneous = best_homogeneous_schedule(pipeline_large, scheduler)
        assert overheads["kernel"] == homogeneous.scheduling_overhead == 0.0
        assert len(homogeneous.placements_used) == 1
        cost_aware = scheduler.schedule(
            pipeline_large, SchedulingPolicy.COST_AWARE
        )
        assert homogeneous.predicted_total > cost_aware.predicted_total

    def test_best_homogeneous_picks_cheapest_target(
        self, scheduler, pipeline_large
    ):
        homogeneous = best_homogeneous_schedule(pipeline_large, scheduler)
        per_target = {
            target: scheduler.evaluate(
                pipeline_large,
                {name: target for name in pipeline_large.stage_names},
            ).predicted_total
            for target in scheduler.targets
        }
        assert homogeneous.predicted_total == min(per_target.values())
