"""Scale-out batch DES: coalescing/sharding equivalence and arrivals.

The serving fast path (signature-coalesced super-jobs replayed FIFO,
contention-sharded engines) is an optimization, never an approximation:
every per-job report and the makespan must match the uncollapsed,
unsharded generator DES bit for bit — property-checked here over random
chain/DAG batches, with and without arrival processes.  Any observer
forces the uncollapsed DES, which is also how the reference results are
obtained.
"""

import random

import pytest

from repro.core.arrivals import percentile, poisson_arrivals
from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import SchedulingPolicy
from repro.dft.workload import problem_size
from repro.errors import SimulationError

SIZES = (16, 64, 128, 512, 1024)


def _jobs(framework, entries):
    """(pipeline, schedule) pairs resolved through the framework caches,
    so duplicate entries share objects — the coalescing precondition."""
    jobs = []
    for n_atoms, builder in entries:
        pipeline = framework._build_pipeline(problem_size(n_atoms), builder)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))
    return jobs


def _random_entries(rng, n_jobs, dag_fraction=0.25):
    return [
        (
            rng.choice(SIZES),
            build_kpoint_pipeline
            if rng.random() < dag_fraction
            else build_pipeline,
        )
        for _ in range(n_jobs)
    ]


class TestCoalesceShardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_batches_identical_on_vs_off(self, framework, seed):
        """Random mixed chain/DAG batches: fast path on vs off vs the
        observer-forced engine — every float identical."""
        rng = random.Random(seed)
        jobs = _jobs(framework, _random_entries(rng, rng.randint(2, 32)))
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 10, 3) for _ in jobs]
        fast = framework.executor.execute_many(jobs, arrivals=arrivals)
        slow = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        observed = framework.executor.execute_many(
            jobs, arrivals=arrivals, observer=lambda *args: None
        )
        assert fast.makespan == slow.makespan == observed.makespan
        assert fast.job_reports == slow.job_reports == observed.job_reports

    def test_pure_batch_is_one_superjob(self, framework):
        jobs = _jobs(framework, [(512, build_pipeline)] * 24)
        fast = framework.executor.execute_many(jobs)
        slow = framework.executor.execute_many(
            jobs, coalesce=False, shard=False
        )
        assert fast.n_superjobs == 1
        assert fast.job_reports == slow.job_reports
        assert fast.makespan == slow.makespan

    def test_observer_forces_uncollapsed_des(self, framework):
        """Any observer — even a no-op — must route through the single
        shared engine (trace consumers need the full event stream)."""
        jobs = _jobs(framework, [(64, build_pipeline)] * 4)
        observed = framework.executor.execute_many(
            jobs, observer=lambda *args: None
        )
        assert observed.n_shards == 1
        assert observed.n_superjobs == 0
        events = []
        framework.executor.execute_many(
            jobs,
            observer=lambda lane, label, start, end: events.append(label),
        )
        # Every job's every stage shows up individually: nothing was
        # collapsed into a super-job.
        for index in range(len(jobs)):
            assert any(label.startswith(f"job{index}:") for label in events)

    def test_dag_jobs_take_the_dag_replay_and_match(self, framework):
        jobs = _jobs(framework, [(256, build_kpoint_pipeline)] * 6)
        fast = framework.executor.execute_many(jobs)
        slow = framework.executor.execute_many(
            jobs, coalesce=False, shard=False
        )
        # Branching jobs no longer force the generator engine: the DAG
        # replay coalesces the identical replicas into one super-job.
        assert fast.backend_jobs == {"dag_replay": 6}
        assert fast.n_superjobs == 1
        assert slow.backend_jobs == {"engine": 6}
        assert fast.job_reports == slow.job_reports

    def test_run_many_toggles_identical(self):
        sizes = [64, 1024, 64, 512, 128, 64]
        fast = NdftFramework().run_many(sizes)
        slow = NdftFramework().run_many(sizes, coalesce=False, shard=False)
        assert fast.makespan == slow.makespan
        assert fast.solo_times == slow.solo_times
        assert (
            fast.batch_report.job_reports == slow.batch_report.job_reports
        )


def _toy_chain(label, stage_specs, edge_bytes):
    """A hand-built chain pipeline with exact round-number durations,
    for constructing same-instant event ties."""
    from repro.core.ir import function_from_workload
    from repro.core.pipeline import Edge, Pipeline, Stage
    from repro.model import KernelWorkload

    stages = []
    for i, _duration in enumerate(stage_specs):
        workload = KernelWorkload(
            name=f"{label}{i}", flops=1.0, bytes_read=1.0, bytes_written=1.0
        )
        stages.append(
            Stage(
                name=f"{label}{i}",
                workload=workload,
                function=function_from_workload(
                    workload, live_in_bytes=1.0, live_out_bytes=1.0
                ),
            )
        )
    edges = tuple(
        Edge(src=f"{label}{i}", dst=f"{label}{i + 1}", nbytes=nbytes)
        for i, nbytes in enumerate(edge_bytes)
    )
    return Pipeline(
        problem=problem_size(8), stages=tuple(stages), edges=edges
    )


def _toy_schedule(pipeline, placements, durations, cost_model):
    from repro.core.scheduler import Schedule, SchedulingPolicy
    from repro.hw.timing import PhaseTime

    assignments = {
        stage.name: placement
        for stage, placement in zip(pipeline.stages, placements)
    }
    crossing = [
        edge
        for edge in pipeline.edges
        if assignments[edge.src] is not assignments[edge.dst]
    ]
    overhead = sum(
        cost_model.boundary_cost(
            e.nbytes, (assignments[e.src], assignments[e.dst])
        )
        for e in crossing
    )
    stage_times = {
        stage.name: PhaseTime(
            name=stage.name, compute_time=duration, memory_time=duration
        )
        for stage, duration in zip(pipeline.stages, durations)
    }
    return Schedule(
        policy=SchedulingPolicy.COST_AWARE,
        assignments=assignments,
        stage_times=stage_times,
        crossing_bytes=tuple(e.nbytes for e in crossing),
        scheduling_overhead=overhead,
        predicted_total=sum(durations) + overhead,
        crossing_pairs=tuple(
            (assignments[e.src], assignments[e.dst]) for e in crossing
        ),
    )


class TestExactTimeTies:
    """Same-instant event collisions, constructed with round-number
    durations: the replay must resolve them grant-for-grant like the
    engine's seq cascade (a finishing stage reaches its next acquire two
    hops after its completion, a mid-stage transfer only one)."""

    def test_stage_end_vs_transfer_end_tie(self):
        from repro.core.cost_model import OffloadCostModel
        from repro.core.executor import PipelineExecutor
        from repro.core.scheduler import Placement
        from repro.hw.interconnect import HostLink

        cost_model = OffloadCostModel(
            host_link=HostLink(bandwidth=1.0, base_latency=0.0),
            context_switch=0.125,
        )
        executor = PipelineExecutor(cost_model=cost_model)
        # X: cpu 1.0s then cpu 5.0s (no crossing).  Y: ndp 0.5s, then an
        # NDP->CPU transfer of 0.375 bytes (0.375/1.0 + 0.125 = 0.5s),
        # then cpu 3.0s.  Y's transfer and X's first stage both end at
        # exactly t=1.0, and both next want the CPU: the engine grants Y
        # (one-hop mid-stage resume) before X (two-hop stage boundary).
        x = _toy_chain("x", (1.0, 5.0), (0.0,))
        x_schedule = _toy_schedule(
            x, (Placement.CPU, Placement.CPU), (1.0, 5.0), cost_model
        )
        y = _toy_chain("y", (0.5, 3.0), (0.375,))
        y_schedule = _toy_schedule(
            y, (Placement.NDP, Placement.CPU), (0.5, 3.0), cost_model
        )
        jobs = [(x, x_schedule), (y, y_schedule)]
        fast = executor.execute_many(jobs)
        slow = executor.execute_many(jobs, coalesce=False, shard=False)
        assert fast.job_reports == slow.job_reports
        assert fast.makespan == slow.makespan
        # And the tie genuinely resolved in Y's favor (engine semantics).
        assert slow.job_reports[1].total_time == 4.0
        assert slow.job_reports[0].total_time == 9.0

    @pytest.mark.parametrize("order", [0, 1])
    def test_round_number_tie_storms(self, order):
        """Many identical round-number jobs interleaved two ways: every
        completion collides with several others at integer instants."""
        from repro.core.cost_model import OffloadCostModel
        from repro.core.executor import PipelineExecutor
        from repro.core.scheduler import Placement
        from repro.hw.interconnect import HostLink

        cost_model = OffloadCostModel(
            host_link=HostLink(bandwidth=1.0, base_latency=0.0),
            context_switch=0.5,
        )
        executor = PipelineExecutor(cost_model=cost_model)
        a = _toy_chain("a", (1.0, 1.0, 1.0), (0.0, 0.0))
        a_schedule = _toy_schedule(
            a,
            (Placement.CPU, Placement.CPU, Placement.CPU),
            (1.0, 1.0, 1.0),
            cost_model,
        )
        b = _toy_chain("b", (1.0, 1.0), (0.5,))
        b_schedule = _toy_schedule(
            b, (Placement.NDP, Placement.CPU), (1.0, 1.0), cost_model
        )
        jobs = [(a, a_schedule), (b, b_schedule)] * 4
        if order:
            jobs = jobs[::-1]
        for arrivals in (None, [0.0, 1.0] * 4):
            fast = executor.execute_many(jobs, arrivals=arrivals)
            slow = executor.execute_many(
                jobs, arrivals=arrivals, coalesce=False, shard=False
            )
            assert fast.job_reports == slow.job_reports
            assert fast.makespan == slow.makespan


class TestContentionSharding:
    def test_disjoint_placements_split_into_shards(self, framework):
        """An all-CPU job and an all-NDP job share nothing: two engine
        shards, same results as the single shared engine."""
        pipeline = framework._build_pipeline(problem_size(64), build_pipeline)
        cpu_only = framework.scheduler.schedule(
            pipeline, SchedulingPolicy.ALL_CPU
        )
        ndp_only = framework.scheduler.schedule(
            pipeline, SchedulingPolicy.ALL_NDP
        )
        jobs = [(pipeline, cpu_only), (pipeline, ndp_only)] * 3
        fast = framework.executor.execute_many(jobs)
        slow = framework.executor.execute_many(
            jobs, coalesce=False, shard=False
        )
        assert fast.n_shards == 2
        assert fast.n_superjobs == 2  # one super-job per shard
        assert fast.job_reports == slow.job_reports
        assert fast.makespan == slow.makespan

    def test_cost_aware_mix_shares_one_shard(self, framework):
        """The default mix offloads every job across CPU+NDP+link, so
        contention connects everything into a single shard."""
        jobs = _jobs(
            framework, [(n, build_pipeline) for n in (64, 128, 512, 1024)]
        )
        report = framework.executor.execute_many(jobs)
        assert report.n_shards == 1
        assert report.n_superjobs == 4


class TestArrivals:
    def test_poisson_arrivals_deterministic_and_monotone(self):
        a = poisson_arrivals(100, rate=2.0, seed=7)
        b = poisson_arrivals(100, rate=2.0, seed=7)
        assert a == b
        assert all(x <= y for x, y in zip(a, a[1:]))
        assert poisson_arrivals(100, rate=2.0, seed=8) != a
        with pytest.raises(ValueError):
            poisson_arrivals(0, rate=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, rate=0.0)

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert percentile([5.0], 99) == 5.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_open_queue_latency_metrics(self, framework):
        sizes = [64, 128, 512, 1024] * 4
        arrivals = poisson_arrivals(len(sizes), rate=1.0, seed=3)
        batch = framework.run_many(sizes, arrivals=arrivals)
        assert batch.arrivals == arrivals
        assert len(batch.completion_latencies) == len(sizes)
        for latency, arrival, job in zip(
            batch.completion_latencies, arrivals, batch.jobs
        ):
            assert latency == job.report.total_time - arrival
            assert job.report.total_time >= arrival
        assert batch.p50_latency <= batch.p99_latency
        assert batch.p99_latency <= max(batch.completion_latencies)
        # Queueing delay is latency minus the unloaded solo time (zero
        # up to float association for uncontended jobs).
        for delay, latency, solo in zip(
            batch.queueing_delays, batch.completion_latencies, batch.solo_times
        ):
            assert delay == latency - solo
            assert delay >= -1e-9 * max(1.0, solo)

    def test_zero_arrivals_match_closed_batch(self):
        sizes = [64, 512, 64, 1024]
        closed = NdftFramework().run_many(sizes)
        open_q = NdftFramework().run_many(sizes, arrivals=[0.0] * len(sizes))
        assert closed.makespan == open_q.makespan
        assert (
            closed.batch_report.job_reports == open_q.batch_report.job_reports
        )

    def test_late_arrival_queues_behind_nobody(self, framework):
        """A job released after the batch drains runs at solo speed."""
        solo = framework.run(n_atoms=64).total_time
        batch = framework.run_many([64, 64], arrivals=[0.0, 1e6])
        late = batch.jobs[1].report.total_time
        assert late == pytest.approx(1e6 + solo, rel=1e-12)

    def test_arrival_validation(self, framework):
        with pytest.raises(SimulationError):
            framework.run_many([64, 64], arrivals=[0.0])
        with pytest.raises(SimulationError):
            framework.run_many([64, 64], arrivals=[0.0, -1.0])

    def test_placement_respects_arrival_order_not_submission(self, framework):
        """Arrival order wins FIFO: a later-submitted job arriving first
        is served first on the contended device."""
        batch = framework.run_many([512, 512], arrivals=[5.0, 0.0])
        first, second = (job.report.total_time for job in batch.jobs)
        assert second < first
