"""Job signatures and the framework's serving-fast-path memoization."""

import pytest

from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.core.signature import job_signature
from repro.dft.workload import problem_size
from repro.hw.timing import PhaseTime


def _fresh():
    return NdftFramework()


class TestStructuralHash:
    def test_same_problem_same_hash(self):
        a = build_pipeline(problem_size(64))
        b = build_pipeline(problem_size(64))
        assert a is not b
        assert a.structural_hash == b.structural_hash

    def test_different_size_different_hash(self):
        a = build_pipeline(problem_size(64))
        b = build_pipeline(problem_size(128))
        assert a.structural_hash != b.structural_hash

    def test_builder_shape_changes_hash(self):
        chain = build_pipeline(problem_size(64))
        dag = build_kpoint_pipeline(problem_size(64), n_kpoints=2)
        assert chain.structural_hash != dag.structural_hash

    def test_hash_is_cached_on_the_object(self):
        pipeline = build_pipeline(problem_size(64))
        assert pipeline.structural_hash is pipeline.structural_hash

    def test_segment_contents_change_hash(self):
        """Two hand-built pipelines that differ only *inside* a stage's
        segments (same totals, same segment count) must hash apart: the
        SCA's consistency verdict depends on the per-segment split, so
        a shared hash would alias their memoized reports."""
        from dataclasses import replace

        from repro.core.ir import CodeSegment

        base = build_pipeline(problem_size(64))
        stage = base.stages[0]
        seg_a, seg_b = stage.function.segments[:2]
        moved = (
            replace(seg_a, flops=seg_a.flops * 0.5),
            replace(seg_b, flops=seg_b.flops * 1.5),
        ) + stage.function.segments[2:]
        assert isinstance(moved[0], CodeSegment)
        skewed_stage = replace(
            stage, function=replace(stage.function, segments=moved)
        )
        skewed = replace(base, stages=(skewed_stage, *base.stages[1:]))
        assert skewed.structural_hash != base.structural_hash


class TestJobSignature:
    def test_equal_jobs_share_signature(self):
        framework = _fresh()
        a = framework.job_signature(build_pipeline(problem_size(64)))
        b = framework.job_signature(build_pipeline(problem_size(64)))
        assert a == b
        assert hash(a) == hash(b)

    def test_policy_distinguishes(self):
        pipeline = build_pipeline(problem_size(64))
        framework = _fresh()
        cost_aware = job_signature(
            pipeline,
            SchedulingPolicy.COST_AWARE,
            framework.scheduler,
            framework.cost_model,
        )
        naive = job_signature(
            pipeline,
            SchedulingPolicy.NAIVE,
            framework.scheduler,
            framework.cost_model,
        )
        assert cost_aware != naive

    def test_register_target_changes_signature(self):
        framework = _fresh()
        pipeline = build_pipeline(problem_size(64))
        before = framework.job_signature(pipeline)
        framework.register_target(Placement.NDP, framework.ndp)
        after = framework.job_signature(pipeline)
        assert before != after
        assert after.registry_fingerprint[0] > before.registry_fingerprint[0]


class _GlacialMachine:
    """An execution target so slow no sane schedule keeps work on it."""

    def execute(self, workload) -> PhaseTime:
        return PhaseTime(
            name=str(workload.name), compute_time=1e6, memory_time=1e6
        )


class TestFrameworkMemoization:
    def test_duplicate_jobs_hit_every_cache(self):
        framework = _fresh()
        framework.run_many([64, 64, 64, 512])
        stats = framework.cache_stats
        for kind in ("pipeline", "schedule", "solo", "sca"):
            assert stats[f"{kind}_misses"] == 2
            assert stats[f"{kind}_hits"] == 2

    def test_caches_compose_across_calls(self):
        framework = _fresh()
        framework.run(n_atoms=64)
        framework.run(n_atoms=64)
        assert framework.cache_stats["schedule_hits"] == 1
        batch = framework.run_many([64, 64])
        assert framework.cache_stats["schedule_misses"] == 1
        assert batch.n_jobs == 2

    def test_cached_and_uncached_results_identical(self):
        sizes = [64, 64, 512, 1024, 64]
        cached = _fresh().run_many(sizes)
        uncached = NdftFramework(memoize=False).run_many(sizes)
        assert cached.makespan == uncached.makespan
        assert cached.solo_times == uncached.solo_times
        for job_c, job_u in zip(cached.jobs, uncached.jobs):
            assert job_c.report == job_u.report
            assert job_c.schedule == job_u.schedule
            assert job_c.sca_reports == job_u.sca_reports

    def test_duplicate_entries_share_built_pipeline(self):
        framework = _fresh()
        batch = framework.run_many([64, 64])
        assert batch.jobs[0].schedule is batch.jobs[1].schedule
        assert len(framework._pipeline_cache) == 1

    def test_memoize_false_bypasses_caches(self):
        framework = NdftFramework(memoize=False)
        framework.run_many([64, 64])
        assert framework._schedule_cache == {}
        assert all(count == 0 for count in framework.cache_stats.values())

    def test_register_target_invalidates_and_reschedules(self):
        """A cached schedule must not survive a registry change: replacing
        the NDP side with a glacial machine has to push every stage back
        onto the CPU on the very next run."""
        framework = _fresh()
        before = framework.run(n_atoms=1024)
        assert Placement.NDP in before.schedule.placements_used
        framework.register_target(Placement.NDP, _GlacialMachine())
        assert framework._schedule_cache == {}
        after = framework.run(n_atoms=1024)
        assert after.schedule.placements_used == {Placement.CPU}
        assert after.total_time != before.total_time

    def test_clear_caches(self):
        framework = _fresh()
        framework.run(n_atoms=64)
        assert framework._schedule_cache
        framework.clear_caches()
        assert not framework._schedule_cache
        assert not framework._pipeline_cache
        assert not framework._solo_report_cache
        assert not framework._sca_cache

    def test_solo_cache_returns_standalone_times_inside_batches(self):
        """Solo times reported by a batch equal dedicated-machine runs."""
        framework = _fresh()
        solo = framework.run(n_atoms=512).total_time
        batch = framework.run_many([512, 512])
        assert batch.solo_times == (solo, solo)

    def test_kpoint_builder_keys_separately_from_chain(self):
        framework = _fresh()
        framework.run_many([64])
        framework.run_many([64], pipeline_builder=build_kpoint_pipeline)
        assert framework.cache_stats["pipeline_misses"] == 2
        assert framework.cache_stats["schedule_misses"] == 2


class TestPolicyRespectedUnderMemoization:
    @pytest.mark.parametrize(
        "policy", [SchedulingPolicy.ALL_CPU, SchedulingPolicy.ALL_NDP]
    )
    def test_homogeneous_policies(self, policy):
        framework = NdftFramework(policy=policy)
        batch = framework.run_many([64, 64])
        expected = {
            SchedulingPolicy.ALL_CPU: Placement.CPU,
            SchedulingPolicy.ALL_NDP: Placement.NDP,
        }[policy]
        for job in batch.jobs:
            assert job.schedule.placements_used == {expected}
