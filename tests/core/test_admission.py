"""Admission control and the open-queue latency-accounting fixes.

The admission layer (:mod:`repro.core.arrivals` ``AdmissionPolicy`` /
``plan_admission``, consumed by ``NdftFramework.run_many(admission=)``)
must be deterministic, must act only when asked (admission off is
bit-identical to the pre-admission behavior), and must actually bound
the post-shed tail on the serving mix.  This file also pins the
latency-accounting bugfixes that ride along: busy-span throughput and
batching speedup under an open queue, and graceful degenerate (empty /
fully shed) batches in both report classes.
"""

import pytest

from repro.core.arrivals import (
    AdmissionPolicy,
    plan_admission,
    poisson_arrivals,
)
from repro.core.executor import BatchExecutionReport, PipelineExecutor
from repro.core.framework import NdftFramework
from repro.errors import ConfigError

#: The serve-bench default mix, repeated into a batch.
MIX = (64, 128, 512, 1024)


def _mix(n):
    return [MIX[i % len(MIX)] for i in range(n)]


class TestAdmissionPolicyValidation:
    def test_needs_at_least_one_criterion(self):
        with pytest.raises(ValueError):
            AdmissionPolicy()

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(slo_p99=1.0, mode="drop")

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(slo_p99=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)

    def test_json_roundtrip_shape(self):
        policy = AdmissionPolicy(slo_p99=2.0, max_queue_depth=8)
        assert policy.to_json_dict() == {
            "slo_p99": 2.0,
            "max_queue_depth": 8,
            "mode": "shed",
        }


class TestPlanAdmission:
    def test_misaligned_inputs_rejected(self):
        policy = AdmissionPolicy(slo_p99=1.0)
        with pytest.raises(ValueError):
            plan_admission(policy, [0.0, 1.0], [1.0], [("cpu",)], ["a"])

    def test_slo_sheds_backlogged_lane(self):
        """Three unit jobs on one lane arriving together: the third's
        predicted latency (two queued solos + its own) breaches a 2.5 s
        SLO while the first two fit."""
        policy = AdmissionPolicy(slo_p99=2.5)
        decisions = plan_admission(
            policy,
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [("cpu",)] * 3,
            ["a", "b", "c"],
        )
        assert [d.admitted for d in decisions] == [True, True, False]
        assert decisions[2].reason == "slo_p99"
        assert decisions[2].predicted_latency == 3.0

    def test_disjoint_lanes_do_not_interfere(self):
        policy = AdmissionPolicy(slo_p99=1.5)
        decisions = plan_admission(
            policy,
            [0.0, 0.0],
            [1.0, 1.0],
            [("cpu",), ("ndp",)],
            ["a", "b"],
        )
        assert all(d.admitted for d in decisions)

    def test_queue_depth_bounds_in_flight(self):
        """With depth 1, the second simultaneous arrival is shed even
        though no SLO is set; once the first drains, later arrivals are
        admitted again."""
        policy = AdmissionPolicy(max_queue_depth=1)
        decisions = plan_admission(
            policy,
            [0.0, 0.0, 5.0],
            [1.0, 1.0, 1.0],
            [("cpu",)] * 3,
            ["a", "b", "c"],
        )
        assert [d.admitted for d in decisions] == [True, False, True]
        assert decisions[1].reason == "queue_depth"

    def test_deprioritize_defers_instead_of_shedding(self):
        policy = AdmissionPolicy(slo_p99=2.5, mode="deprioritize")
        decisions = plan_admission(
            policy,
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [("cpu",)] * 3,
            ["a", "b", "c"],
        )
        assert [d.deferred for d in decisions] == [False, False, True]
        # Deferred to the predicted lane drain (two admitted solos).
        assert decisions[2].release == 2.0

    def test_deprioritize_depth_violation_defers_past_a_completion(self):
        """A queue-depth violator whose lanes are idle must still be
        genuinely deferred — at least to the earliest in-flight
        completion — not re-released at its own arrival (which would
        make deprioritize a no-op for depth violations)."""
        policy = AdmissionPolicy(max_queue_depth=1, mode="deprioritize")
        decisions = plan_admission(
            policy,
            [0.0, 0.0],
            [1.0, 1.0],
            [("cpu",), ("ndp",)],  # disjoint lanes: no backlog signal
            ["a", "b"],
        )
        assert decisions[0].admitted and decisions[1].deferred
        assert decisions[1].reason == "queue_depth"
        assert decisions[1].release == 1.0  # job a's predicted completion

    def test_arrival_ties_break_by_submission_index(self):
        policy = AdmissionPolicy(max_queue_depth=1)
        decisions = plan_admission(
            policy,
            [1.0, 1.0],
            [1.0, 1.0],
            [("cpu",)] * 2,
            ["first", "second"],
        )
        assert decisions[0].admitted and not decisions[1].admitted

    def test_plan_is_deterministic(self):
        policy = AdmissionPolicy(slo_p99=1.7, max_queue_depth=5)
        arrivals = poisson_arrivals(64, 6.0, seed=3)
        solos = [0.1 + (i % 7) * 0.3 for i in range(64)]
        lanes = [("cpu", "ndp") if i % 2 else ("ndp",) for i in range(64)]
        labels = [f"job{i}" for i in range(64)]
        first = plan_admission(policy, arrivals, solos, lanes, labels)
        second = plan_admission(policy, arrivals, solos, lanes, labels)
        assert first == second


class TestRunManyAdmission:
    @pytest.fixture(scope="class")
    def overload(self):
        """The default serve-bench mix offered well past its ~3.5 jobs/s
        saturation knee."""
        sizes = _mix(128)
        return sizes, poisson_arrivals(len(sizes), 5.0, seed=0)

    def test_admission_requires_arrivals(self):
        framework = NdftFramework()
        with pytest.raises(ConfigError):
            framework.run_many(
                [64, 128], admission=AdmissionPolicy(slo_p99=1.0)
            )

    def test_post_shed_p99_meets_the_slo(self, overload):
        """The acceptance criterion: past the knee, an SLO below the
        unshed p99 is actually met after shedding, and the shed set is
        visible (counts + labels)."""
        sizes, arrivals = overload
        framework = NdftFramework()
        unshed = framework.run_many(sizes, arrivals=arrivals)
        slo = 2.0
        assert unshed.p99_latency > slo  # the SLO genuinely binds
        shed = framework.run_many(
            sizes, arrivals=arrivals, admission=AdmissionPolicy(slo_p99=slo)
        )
        admission = shed.admission
        assert admission is not None
        assert admission.shed > 0
        assert admission.admitted + admission.shed == len(sizes)
        assert admission.shed_labels
        assert len(admission.shed_labels) == admission.shed
        assert shed.n_jobs == admission.admitted
        assert shed.p99_latency <= slo
        assert shed.slo_p99_latency == shed.p99_latency  # shed mode
        assert 0.0 < admission.shed_rate < 1.0

    def test_lane_utilization_identifies_the_saturated_lane(self, overload):
        """Past the knee the NDP units are the bottleneck of the default
        mix: their lane reads near-1.0 utilization and dominates every
        other lane; shedding visibly relieves it."""
        sizes, arrivals = overload
        framework = NdftFramework()
        unshed = framework.run_many(sizes, arrivals=arrivals)
        utilization = unshed.lane_utilization
        dominant = max(utilization, key=utilization.get)
        assert dominant == "ndp"
        assert utilization["ndp"] > 0.9
        assert all(
            utilization[lane] < utilization["ndp"]
            for lane in utilization
            if lane != "ndp"
        )
        shed = framework.run_many(
            sizes, arrivals=arrivals, admission=AdmissionPolicy(slo_p99=2.0)
        )
        assert shed.lane_utilization["ndp"] < utilization["ndp"]

    def test_same_seed_and_slo_shed_the_same_set(self, overload):
        """Admission-policy determinism: the shed set is a pure function
        of (arrivals, policy), across calls and across frameworks."""
        sizes, arrivals = overload
        policy = AdmissionPolicy(slo_p99=2.0)
        first = NdftFramework().run_many(
            sizes, arrivals=arrivals, admission=policy
        )
        second = NdftFramework().run_many(
            sizes, arrivals=arrivals, admission=policy
        )
        assert first.admission.decisions == second.admission.decisions
        assert first.admission.shed_labels == second.admission.shed_labels
        assert first.completion_latencies == second.completion_latencies

    def test_admission_off_is_bit_identical(self, overload):
        """run_many without admission= must reproduce the pre-admission
        behavior exactly: same reports, same backend selection, same
        latencies."""
        sizes, arrivals = overload
        plain = NdftFramework().run_many(sizes, arrivals=arrivals)
        explicit = NdftFramework().run_many(
            sizes, arrivals=arrivals, admission=None
        )
        assert explicit.admission is None
        assert explicit.makespan == plain.makespan
        assert explicit.solo_times == plain.solo_times
        assert (
            explicit.batch_report.job_reports == plain.batch_report.job_reports
        )
        assert explicit.batch_report.backend_jobs == plain.batch_report.backend_jobs
        assert explicit.slo_latencies == explicit.completion_latencies

    def test_deprioritize_executes_everything(self, overload):
        """deprioritize mode sheds nothing: every submitted job runs,
        deferred ones at their predicted drain, and only admitted jobs
        count toward the SLO percentiles."""
        sizes, arrivals = overload
        result = NdftFramework().run_many(
            sizes,
            arrivals=arrivals,
            admission=AdmissionPolicy(slo_p99=2.0, mode="deprioritize"),
        )
        admission = result.admission
        assert admission.shed == 0
        assert admission.deferred > 0
        assert result.n_jobs == len(sizes)
        assert len(result.slo_latencies) == admission.admitted
        # Deferred releases never precede the job's arrival.
        for decision in admission.decisions:
            assert decision.release >= decision.arrival

    def test_shedding_everything_degrades_gracefully(self):
        """An SLO below every solo time sheds the whole batch: the
        result is empty but every accessor still answers."""
        sizes = _mix(8)
        arrivals = poisson_arrivals(len(sizes), 2.0, seed=0)
        result = NdftFramework().run_many(
            sizes, arrivals=arrivals, admission=AdmissionPolicy(slo_p99=1e-9)
        )
        assert result.n_jobs == 0
        assert result.admission.shed == len(sizes)
        assert result.admission.shed_rate == 1.0
        assert result.completion_latencies == ()
        assert result.p50_latency == 0.0
        assert result.p99_latency == 0.0
        assert result.slo_p99_latency == 0.0
        assert result.mean_queueing_delay == 0.0
        assert result.throughput == 0.0
        assert result.makespan == 0.0
        assert result.batching_speedup == 1.0
        assert result.lane_utilization == {}


class TestBusySpanAccounting:
    """The open-queue throughput/speedup bugfix: shared-machine time is
    the busy span (first release -> last completion), not the makespan
    with its idle arrival ramp."""

    def test_open_queue_throughput_excludes_arrival_ramp(self):
        sizes = _mix(16)
        # A long idle ramp: nothing is released before t=100.
        arrivals = [100.0 + offset for offset in poisson_arrivals(16, 2.0)]
        result = NdftFramework().run_many(sizes, arrivals=arrivals)
        span = result.makespan - min(arrivals)
        assert result.busy_span == span
        assert result.throughput == len(sizes) / span
        assert result.batching_speedup == result.serial_time / span
        # The ramp would have more than halved the reported rate.
        assert result.throughput > 2 * len(sizes) / result.makespan

    def test_closed_batch_unchanged(self):
        """The t=0 batch is the documented special case: busy span ==
        makespan, so throughput and speedup are exactly the pre-fix
        values."""
        result = NdftFramework().run_many(_mix(8))
        assert result.busy_span == result.makespan
        assert result.throughput == result.n_jobs / result.makespan
        assert (
            result.batching_speedup == result.serial_time / result.makespan
        )

    def test_executor_report_agrees(self, framework):
        from repro.core.pipeline import build_pipeline
        from repro.dft.workload import problem_size

        pipeline = framework._build_pipeline(problem_size(64), build_pipeline)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs = [(pipeline, schedule)] * 4
        arrivals = [3.0, 3.5, 4.0, 4.5]
        report = framework.executor.execute_many(jobs, arrivals=arrivals)
        assert report.first_release == 3.0
        assert report.busy_span == report.makespan - 3.0
        assert report.throughput == 4 / report.busy_span

    def test_empty_report_degrades_gracefully(self):
        report = BatchExecutionReport(job_reports=(), makespan=0.0, arrivals=())
        assert report.n_jobs == 0
        assert report.completion_latencies == ()
        assert report.first_release == 0.0
        assert report.busy_span == 0.0
        assert report.throughput == 0.0
        assert report.lane_busy_seconds == {}
        assert report.lane_utilization == {}


class TestScheduleLanes:
    def test_lanes_cover_devices_and_wires(self, framework):
        from repro.core.pipeline import build_pipeline
        from repro.dft.workload import problem_size

        pipeline = framework._build_pipeline(problem_size(512), build_pipeline)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        lanes = PipelineExecutor.schedule_lanes(schedule)
        assert set(lanes) == {"cpu", "ndp", "link:cpu-ndp"}
        # Deterministic (sorted) so admission plans are reproducible.
        assert list(lanes) == sorted(lanes)
