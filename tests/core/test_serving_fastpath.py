"""The executor's analytic chain fast path and DES fairness/determinism.

The fast path must be invisible: a single uncontended chain job computed
analytically has to match the full discrete-event simulation bit for bit
(the Fig. 7 totals ride on it).  Passing any observer — even a no-op —
forces the full DES, which is how these tests obtain the reference.

The batch executor's contract at serving scale is fairness and
determinism: contended resources grant FIFO in submission order, and
repeated runs of the same batch are bit-identical.
"""

import pytest

from repro.core.executor import PipelineExecutor
from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import SchedulingPolicy
from repro.dft.workload import problem_size
from repro.hw.engine import Engine


def _noop_observer(*_args):
    pass


class TestAnalyticChainFastPath:
    @pytest.mark.parametrize("n_atoms", [16, 64, 512, 1024, 2048])
    def test_bit_identical_to_des(self, framework, n_atoms):
        pipeline = build_pipeline(problem_size(n_atoms))
        schedule = framework.scheduler.schedule(pipeline)
        fast = framework.executor.execute(pipeline, schedule)
        des = framework.executor.execute(
            pipeline, schedule, observer=_noop_observer
        )
        assert fast.total_time == des.total_time  # exact, no tolerance
        assert fast.scheduling_overhead == des.scheduling_overhead
        assert fast.phase_seconds == des.phase_seconds

    @pytest.mark.parametrize(
        "policy",
        [
            SchedulingPolicy.COST_AWARE,
            SchedulingPolicy.NAIVE,
            SchedulingPolicy.ALL_CPU,
            SchedulingPolicy.ALL_NDP,
        ],
    )
    def test_every_policy_matches(self, framework, policy):
        pipeline = build_pipeline(problem_size(256))
        schedule = framework.scheduler.schedule(pipeline, policy)
        fast = framework.executor.execute(pipeline, schedule)
        des = framework.executor.execute(
            pipeline, schedule, observer=_noop_observer
        )
        assert fast.total_time == des.total_time

    def test_branching_dag_not_eligible(self, framework):
        """A k-point DAG overlaps branches — the analytic serialization
        would overestimate, so it must go through the DES either way."""
        pipeline = build_kpoint_pipeline(problem_size(256), n_kpoints=2)
        assert not PipelineExecutor._is_single_chain(pipeline)
        schedule = framework.scheduler.schedule(pipeline)
        plain = framework.executor.execute(pipeline, schedule)
        observed = framework.executor.execute(
            pipeline, schedule, observer=_noop_observer
        )
        assert plain.total_time == observed.total_time

    def test_chain_forest_not_eligible(self, framework):
        """``is_chain`` alone admits disjoint chains, which genuinely
        overlap on distinct devices; only a single connected chain takes
        the fast path."""
        chain = build_pipeline(problem_size(64))
        assert PipelineExecutor._is_single_chain(chain)
        assert chain.is_chain and len(chain.entry_stages) == 1


class TestResourceFairness:
    def test_fifo_grant_order_under_contention(self):
        """Waiters are granted strictly in arrival order, never last-in."""
        engine = Engine()
        device = engine.resource(1, "device")
        grants = []

        def job(name, arrival):
            yield engine.timeout(arrival)
            yield device.acquire()
            grants.append(name)
            yield engine.timeout(10.0)
            yield device.release()

        for i, arrival in enumerate([0.0, 1.0, 2.0, 3.0]):
            engine.spawn(job(f"j{i}", arrival))
        engine.run()
        assert grants == ["j0", "j1", "j2", "j3"]

    def test_same_time_requests_grant_in_spawn_order(self):
        engine = Engine()
        device = engine.resource(1, "device")
        grants = []

        def job(name):
            yield device.acquire()
            grants.append(name)
            yield engine.timeout(1.0)
            yield device.release()

        for i in range(5):
            engine.spawn(job(f"j{i}"))
        engine.run()
        assert grants == [f"j{i}" for i in range(5)]

    def test_two_identical_jobs_finish_in_submission_order(self, framework):
        """Two jobs contending for the same devices and wire: the first
        submitted acquires first and therefore finishes no later."""
        batch = framework.run_many([512, 512])
        first, second = (job.report.total_time for job in batch.jobs)
        assert first <= second
        assert batch.makespan == second


class TestBatchDeterminism:
    def test_repeated_execute_many_bit_identical(self):
        """Same batch, fresh frameworks: every reported float matches
        exactly — scheduling, DES arbitration and caching are all
        deterministic."""
        sizes = [64, 1024, 64, 512, 128]
        first = NdftFramework().run_many(sizes)
        second = NdftFramework().run_many(sizes)
        assert first.makespan == second.makespan
        assert first.solo_times == second.solo_times
        assert first.batch_report.job_reports == second.batch_report.job_reports

    def test_repeat_on_same_framework_bit_identical(self, framework):
        sizes = [64, 512, 64]
        first = framework.run_many(sizes)
        second = framework.run_many(sizes)
        assert first.makespan == second.makespan
        assert first.batch_report.job_reports == second.batch_report.job_reports
