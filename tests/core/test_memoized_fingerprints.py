"""Memoized registry/cost-model fingerprints and fault lanes.

Serving-path hot loops (``job_signature`` per job, snapshot fingerprint
checks, fault-plan lane validation) used to re-walk the target registry
and cost model on every call.  Both derivations are now computed once
per registry version and invalidated by ``register_target`` /
``clear_caches`` — these tests pin the cache-hit behavior and the
invalidation edges.
"""

import repro.core.framework as framework_module
from repro.core.framework import NdftFramework
from repro.core.scheduler import Placement


class TestFingerprintMemo:
    def test_fingerprints_cache_hit(self):
        framework = NdftFramework()
        assert framework.fingerprints() is framework.fingerprints()

    def test_job_signature_mints_fingerprints_once(self, monkeypatch):
        """A batch of signatures costs one registry walk and one
        cost-model walk, total — the serving fast path's per-job cost
        is a tuple hash, not a re-derivation."""
        framework = NdftFramework()
        calls = {"registry": 0, "cost": 0}
        real_registry = framework_module.target_registry_fingerprint
        real_cost = framework_module.cost_model_fingerprint

        def counting_registry(scheduler):
            calls["registry"] += 1
            return real_registry(scheduler)

        def counting_cost(cost_model):
            calls["cost"] += 1
            return real_cost(cost_model)

        monkeypatch.setattr(
            framework_module,
            "target_registry_fingerprint",
            counting_registry,
        )
        monkeypatch.setattr(
            framework_module, "cost_model_fingerprint", counting_cost
        )
        framework.run_many([64, 128, 512, 1024])
        framework.cache_fingerprint()
        assert calls == {"registry": 1, "cost": 1}

    def test_register_target_invalidates(self, ndp_model):
        framework = NdftFramework()
        before = framework.fingerprints()
        framework.register_target(Placement.NDP, ndp_model)
        after = framework.fingerprints()
        assert after is not before
        assert after != before  # the registration counter advanced

    def test_clear_caches_resets_memo(self):
        framework = NdftFramework()
        before = framework.fingerprints()
        framework.clear_caches()
        after = framework.fingerprints()
        assert after is not before
        assert after == before  # same registry -> equal value, new mint

    def test_memo_matches_direct_derivation(self):
        framework = NdftFramework()
        registry_fp, cost_fp = framework.fingerprints()
        assert registry_fp == framework_module.target_registry_fingerprint(
            framework.scheduler
        )
        assert cost_fp == framework_module.cost_model_fingerprint(
            framework.cost_model
        )


class TestFaultLanesMemo:
    def test_fault_lanes_cache_hit(self):
        framework = NdftFramework()
        assert framework.fault_lanes() is framework.fault_lanes()

    def test_register_target_invalidates(self, ndp_model):
        framework = NdftFramework()
        before = framework.fault_lanes()
        framework.register_target(Placement.NDP, ndp_model)
        after = framework.fault_lanes()
        assert after is not before
        assert set(after) == set(before)  # same placements re-registered

    def test_clear_caches_resets_memo(self):
        framework = NdftFramework()
        before = framework.fault_lanes()
        framework.clear_caches()
        after = framework.fault_lanes()
        assert after is not before
        assert after == before


class TestMemoOffStillCorrect:
    def test_memoize_false_framework_keeps_identity_caches(self):
        """memoize=False disables the *result* caches, but identity
        digests (fingerprints, fault lanes) are registry facts, not
        results: they stay memoized and stay correct."""
        framework = NdftFramework(memoize=False)
        assert framework.fingerprints() is framework.fingerprints()
        assert framework.fault_lanes() is framework.fault_lanes()
        assert (
            framework.cache_fingerprint()
            == NdftFramework().cache_fingerprint()
        )
