"""Cache snapshot persistence: save/load keyed by the registry/cost-model
fingerprint, refusing mismatches — the serving deployment's warm restart.
"""

import pytest

from repro.core.framework import NdftFramework
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.errors import ConfigError

SIZES = [64, 128, 512, 1024]


class TestSaveLoadRoundTrip:
    def test_loaded_caches_skip_rederivation(self, tmp_path):
        """A fresh process that loads the snapshot re-derives nothing
        for previously-seen jobs — and reports the same floats."""
        warm = NdftFramework()
        before = warm.run_many(SIZES)
        path = warm.save_caches(tmp_path / "caches.pkl")
        assert path.exists()

        restarted = NdftFramework()
        loaded = restarted.load_caches(path)
        assert loaded > 0
        after = restarted.run_many(SIZES)
        stats = restarted.cache_stats
        assert stats["schedule_misses"] == 0
        assert stats["solo_misses"] == 0
        assert stats["sca_misses"] == 0
        assert after.makespan == before.makespan
        assert after.solo_times == before.solo_times
        assert (
            after.batch_report.job_reports == before.batch_report.job_reports
        )

    def test_warm_start_index_survives_restart(self, tmp_path):
        """A never-snapshotted *size* still warm-starts off the loaded
        placement index."""
        warm = NdftFramework()
        warm.run_many(SIZES)
        path = warm.save_caches(tmp_path / "caches.pkl")

        restarted = NdftFramework()
        restarted.load_caches(path)
        restarted.run(n_atoms=2048)  # never seen by the saver
        assert restarted.cache_stats["warm_start_hits"] == 1
        assert restarted.cache_stats["warm_start_misses"] == 0

    def test_load_merges_warm_start_index_per_size(self, tmp_path):
        """Warm-start entries are workload-history-dependent, so a load
        must not wipe locally learned sizes under a shared structure
        key: snapshot sizes merge in under the already-known ones."""
        saver = NdftFramework()
        saver.run(n_atoms=1024)
        path = saver.save_caches(tmp_path / "caches.pkl")

        loader = NdftFramework()
        loader.run(n_atoms=64)  # learns size 64 under the same structure
        loader.load_caches(path)
        merged = next(
            sizes for _key, sizes in loader._warm_start_index.items()
        )
        assert set(merged) == {64, 1024}

    def test_load_merges_instead_of_clobbering(self, tmp_path):
        saver = NdftFramework()
        saver.run(n_atoms=64)
        path = saver.save_caches(tmp_path / "caches.pkl")

        loader = NdftFramework()
        loader.run(n_atoms=512)
        loader.load_caches(path)
        loader.run_many([64, 512])
        assert loader.cache_stats["schedule_misses"] == 1  # only the 512

    def test_snapshot_roundtrips_through_clear(self, tmp_path):
        framework = NdftFramework()
        framework.run(n_atoms=64)
        path = framework.save_caches(tmp_path / "caches.pkl")
        framework.clear_caches()
        framework.load_caches(path)
        framework.run(n_atoms=64)
        assert framework.cache_stats["schedule_misses"] == 1  # pre-save only


class TestFingerprintRefusal:
    def test_policy_mismatch_refused(self, tmp_path):
        saver = NdftFramework()
        saver.run(n_atoms=64)
        path = saver.save_caches(tmp_path / "caches.pkl")
        other = NdftFramework(policy=SchedulingPolicy.ALL_CPU)
        with pytest.raises(ConfigError, match="fingerprint"):
            other.load_caches(path)

    def test_registry_change_refused(self, tmp_path, ndp_model):
        """Once register_target has run, snapshot traffic is refused in
        *both* directions: a custom-registered machine object has no
        cross-process fingerprint (the registration counter only counts
        within one process), so neither saving under it nor loading a
        foreign snapshot into it can be proven sound."""
        saver = NdftFramework()
        saver.run(n_atoms=64)
        path = saver.save_caches(tmp_path / "caches.pkl")
        changed = NdftFramework()
        changed.register_target(Placement.NDP, ndp_model)
        with pytest.raises(ConfigError, match="register_target"):
            changed.load_caches(path)
        with pytest.raises(ConfigError, match="register_target"):
            changed.save_caches(tmp_path / "unsound.pkl")

    def test_system_config_mismatch_refused(self, tmp_path):
        """Machine parameters (not just cost-model links) are part of
        the fingerprint: a framework built on a different SystemConfig
        derives different stage times, so its snapshot must be
        refused — the sensitivity sweeps build exactly such frameworks."""
        from dataclasses import replace

        from repro.hw.config import ndft_system_config

        saver = NdftFramework()
        saver.run(n_atoms=256)
        path = saver.save_caches(tmp_path / "caches.pkl")
        base = ndft_system_config()
        slower_mesh = replace(
            base, ndp=replace(base.ndp, mesh_link_bandwidth=12e9)
        )
        other = NdftFramework(system=slower_mesh)
        with pytest.raises(ConfigError, match="fingerprint"):
            other.load_caches(path)

    def test_gpu_framework_refuses_cpu_ndp_snapshot(self, tmp_path):
        saver = NdftFramework()
        saver.run(n_atoms=64)
        path = saver.save_caches(tmp_path / "caches.pkl")
        gpu = NdftFramework(enable_gpu=True)
        with pytest.raises(ConfigError, match="fingerprint"):
            gpu.load_caches(path)

    def test_garbage_file_refused(self, tmp_path):
        import pickle

        path = tmp_path / "garbage.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ConfigError, match="format"):
            NdftFramework().load_caches(path)

    def test_truncated_snapshot_refused(self, tmp_path):
        """A half-written snapshot (crash or disk error mid-save) must
        raise ConfigError naming the file, never a raw EOFError or
        UnpicklingError."""
        saver = NdftFramework()
        saver.run_many([64, 128])
        path = saver.save_caches(tmp_path / "caches.pkl")
        blob = path.read_bytes()
        for cut in (0, 1, len(blob) // 2, len(blob) - 1):
            truncated = tmp_path / f"truncated_{cut}.pkl"
            truncated.write_bytes(blob[:cut])
            with pytest.raises(ConfigError, match="truncated or corrupt"):
                NdftFramework().load_caches(truncated)

    def test_corrupt_snapshot_refused(self, tmp_path):
        """Arbitrary bytes that are not a pickle stream at all are
        rejected the same way."""
        path = tmp_path / "noise.pkl"
        path.write_bytes(b"\x00\xffnot a pickle stream")
        with pytest.raises(ConfigError, match="truncated or corrupt"):
            NdftFramework().load_caches(path)

    def test_fingerprints_equal_across_fresh_frameworks(self):
        assert (
            NdftFramework().cache_fingerprint()
            == NdftFramework().cache_fingerprint()
        )
