"""Pipeline construction, the DES executor, framework and baselines."""

import pytest

from repro.core.baselines import run_cpu_baseline, run_gpu_baseline
from repro.core.pipeline import STAGE_ORDER, build_pipeline
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.dft.workload import problem_size
from repro.errors import ConfigError
from repro.model import PhaseName


@pytest.fixture(scope="module")
def pipeline():
    return build_pipeline(problem_size(64))


class TestPipeline:
    def test_stage_order_matches_fig1(self, pipeline):
        assert pipeline.stage_names == [str(p) for p in STAGE_ORDER]

    def test_edges_form_chain(self, pipeline):
        names = pipeline.stage_names
        for src, dst in zip(names, names[1:]):
            assert len(pipeline.edges_between(src, dst)) == 1

    def test_edge_bytes_positive_and_shrink_at_gemm(self, pipeline):
        pair_edge = pipeline.edges_between("face_split", "fft")[0]
        sphere_edge = pipeline.edges_between("global_comm", "gemm")[0]
        assert 0 < sphere_edge.nbytes < pair_edge.nbytes

    def test_unknown_stage_lookup(self, pipeline):
        with pytest.raises(ConfigError):
            pipeline.stage("nonexistent")

    def test_functions_attached(self, pipeline):
        for stage in pipeline.stages:
            assert stage.function.workload is stage.workload


class TestExecutor:
    def test_total_is_sum_of_chain(self, framework, pipeline):
        schedule = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        report = framework.executor.execute(pipeline, schedule)
        expected = sum(report.phase_seconds.values()) + report.scheduling_overhead
        assert report.total_time == pytest.approx(expected, rel=1e-9)

    def test_overhead_matches_schedule(self, framework, pipeline):
        schedule = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        report = framework.executor.execute(pipeline, schedule)
        assert report.scheduling_overhead == pytest.approx(
            schedule.scheduling_overhead
        )

    def test_homogeneous_schedule_zero_overhead(self, framework, pipeline):
        schedule = framework.scheduler.schedule(pipeline, SchedulingPolicy.ALL_CPU)
        report = framework.executor.execute(pipeline, schedule)
        assert report.scheduling_overhead == 0.0

    def test_breakdown_includes_scheduling_bucket(self, framework, pipeline):
        schedule = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        report = framework.executor.execute(pipeline, schedule)
        breakdown = report.breakdown()
        assert "scheduling" in breakdown
        assert set(breakdown) == set(report.phase_seconds) | {"scheduling"}


class TestFramework:
    def test_run_by_atom_count(self, framework):
        result = framework.run(n_atoms=64)
        assert result.problem.n_atoms == 64
        assert result.total_time > 0

    def test_requires_problem_or_atoms(self, framework):
        with pytest.raises(ConfigError):
            framework.run()

    def test_sca_reports_for_all_stages(self, framework):
        result = framework.run(n_atoms=64)
        assert set(result.sca_reports) == {str(p) for p in STAGE_ORDER}

    def test_memory_fields(self, framework):
        result = framework.run(n_atoms=1024)
        assert result.memory_footprint_gb < result.replicated_footprint_gb
        assert result.memory_reduction_percent == pytest.approx(57.8, abs=0.3)


class TestBaselines:
    def test_cpu_baseline_single_placement(self):
        report = run_cpu_baseline(problem_size(64))
        assert set(report.assignments.values()) == {Placement.CPU}
        assert report.scheduling_overhead == 0.0
        assert report.total_time == pytest.approx(sum(report.phase_seconds.values()))

    def test_gpu_baseline_pays_transfers(self):
        """GPU phase totals must exceed pure compute+memory overlap — the
        data-movement critique the paper starts from."""
        report = run_gpu_baseline(problem_size(1024))
        fft = report.phase_times[str(PhaseName.FFT)]
        assert fft.transfer_time > 0

    def test_baselines_slower_than_ndft_large(self, framework):
        problem = problem_size(1024)
        ndft = framework.run(problem=problem).total_time
        assert run_cpu_baseline(problem).total_time > 3 * ndft
        assert run_gpu_baseline(problem).total_time > 1.5 * ndft
