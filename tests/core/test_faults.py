"""Deterministic fault injection, retry/backoff, and degraded recovery.

The contracts pinned here:

- **empty-plan bit-identity** — a :class:`FaultPlan` with no events is
  contractually indistinguishable from passing no plan at all, on every
  simulation backend (the executor never enters the fault-aware path);
- **advance-knowledge outage semantics** — a task granted a lane inside
  an outage window waits it out; a window starting mid-service kills the
  whole job at the window start, and the retry re-enters the queue at
  ``fail_time + backoff(attempt)`` in virtual time;
- **degraded placement** — a permanent device death re-places affected
  jobs through the exact scheduling DP with the dead target excluded,
  reproducing exactly what ``scheduler.schedule(exclude=...)`` derives;
- **determinism** — the same plan and arrivals always produce the same
  failure set, retry schedule, and resilience report, byte for byte,
  regardless of backend routing;
- **decline, never approximate** — the replay backends refuse faulted
  shards with a named reason instead of silently mis-simulating them.
"""

import random

import pytest

from repro.core.backends import FAULTED_SHARD_REASON
from repro.core.faults import (
    FaultPlan,
    ResilienceReport,
    RetryPolicy,
    poisson_fault_plan,
)
from repro.core.framework import NdftFramework
from repro.core.pipeline import build_pipeline
from repro.core.scheduler import Placement
from repro.dft.workload import problem_size
from repro.errors import ConfigError, SimulationError
from repro.hw.engine import resolve_faulty_service

SIZES = [64, 128, 512, 1024]


def _jobs(framework, entries):
    jobs = []
    for n_atoms in entries:
        pipeline = framework._build_pipeline(problem_size(n_atoms), build_pipeline)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))
    return jobs


def _identical_batches(a, b):
    """Bit-identity over everything the simulation derives."""
    return (
        a.makespan == b.makespan
        and a.job_reports == b.job_reports
        and a.lane_occupancy == b.lane_occupancy
        and a.arrivals == b.arrivals
    )


def _ndp_window(framework, sizes, width_fraction=0.2):
    """A transient ndp outage window guaranteed to start strictly inside
    an ndp service interval of the healthy batch — so at least one job
    is killed mid-service, deterministically."""
    healthy = framework.run_many(sizes)
    intervals = healthy.batch_report.lane_occupancy["ndp"]
    start, end = max(intervals, key=lambda span: span[1] - span[0])
    t0 = start + (end - start) * 0.5
    return healthy, t0, t0 + healthy.makespan * width_fraction


class TestResolveFaultyService:
    """The engine-level kernel: advance-knowledge, preemption-free."""

    def test_healthy_lane_passes_through(self):
        assert resolve_faulty_service((), None, 3.0, 2.0) == (3.0, None, None)

    def test_grant_inside_window_waits_it_out(self):
        windows = ((1.0, 4.0),)
        assert resolve_faulty_service(windows, None, 2.0, 1.0) == (4.0, None, None)

    def test_window_start_mid_service_kills_at_window_start(self):
        windows = ((5.0, 6.0),)
        service, fail, kind = resolve_faulty_service(windows, None, 3.0, 4.0)
        assert (service, fail, kind) == (3.0, 5.0, "outage")

    def test_service_ending_at_window_start_survives(self):
        # Half-open windows: finishing exactly when the outage starts
        # is a completed task.
        windows = ((5.0, 6.0),)
        assert resolve_faulty_service(windows, None, 3.0, 2.0) == (3.0, None, None)

    def test_chained_windows_resolve_in_order(self):
        # Waiting out the first window lands the task in front of the
        # second, which then kills it.
        windows = ((1.0, 4.0), (5.0, 7.0))
        service, fail, kind = resolve_faulty_service(windows, None, 2.0, 2.0)
        assert (service, fail, kind) == (4.0, 5.0, "outage")

    def test_permanent_death_kills_overrunning_service(self):
        service, fail, kind = resolve_faulty_service((), 5.0, 3.0, 4.0)
        assert (service, fail, kind) == (3.0, 5.0, "permanent")

    def test_grant_after_death_fails_at_grant(self):
        service, fail, kind = resolve_faulty_service((), 5.0, 8.0, 1.0)
        assert (service, fail, kind) == (8.0, 8.0, "permanent")


class TestFaultPlanConstruction:
    def test_windows_sorted_merged_per_lane(self):
        plan = FaultPlan(
            outages=(("ndp", 1.5, 3.0), ("cpu", 0.5, 1.0), ("ndp", 1.0, 2.0))
        )
        assert plan.outages == (("cpu", 0.5, 1.0), ("ndp", 1.0, 3.0))
        assert plan.windows_for("ndp") == ((1.0, 3.0),)
        assert plan.lanes == frozenset({"cpu", "ndp"})
        assert plan.affects(["ndp", "gpu"])
        assert not plan.affects(["gpu", "link:cpu-ndp"])

    def test_windows_clamped_at_permanent_death(self):
        plan = FaultPlan(
            outages=(("ndp", 1.0, 5.0), ("ndp", 6.0, 7.0)),
            permanent=(("ndp", 4.0),),
        )
        assert plan.outages == (("ndp", 1.0, 4.0),)
        assert plan.dead_lanes() == {"ndp": 4.0}
        assert plan.event_times() == (1.0, 4.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError, match="0 <= start < end"):
            FaultPlan(outages=(("ndp", 2.0, 2.0),))
        with pytest.raises(ConfigError, match="0 <= start < end"):
            FaultPlan(outages=(("ndp", -1.0, 2.0),))

    def test_permanent_wire_failure_rejected(self):
        with pytest.raises(ConfigError, match="partitions the machine"):
            FaultPlan(permanent=(("link:cpu-ndp", 1.0),))

    def test_empty_plan_properties(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.lanes == frozenset()
        assert plan.event_times() == ()
        assert not plan.affects(["ndp", "cpu"])

    def test_digest_tracks_normalized_timeline(self):
        # Two constructions that normalize to the same timeline share a
        # digest; a different timeline gets a different one.
        a = FaultPlan(outages=(("ndp", 1.0, 2.0), ("ndp", 1.5, 3.0)))
        b = FaultPlan(outages=(("ndp", 1.0, 3.0),))
        c = FaultPlan(outages=(("ndp", 1.0, 3.5),))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_poisson_plan_deterministic_and_order_independent(self):
        kwargs = dict(mtbf=5.0, mttr=0.5, horizon=60.0, seed=11)
        one = poisson_fault_plan(["ndp", "cpu"], **kwargs)
        two = poisson_fault_plan(["cpu", "ndp"], **kwargs)
        assert one == two
        assert one.digest() == two.digest()
        assert not one.is_empty
        other_seed = poisson_fault_plan(["ndp", "cpu"], **dict(kwargs, seed=12))
        assert one.digest() != other_seed.digest()

    def test_poisson_permanent_after_kills_device_lanes(self):
        plan = poisson_fault_plan(
            ["ndp"], mtbf=2.0, mttr=0.5, horizon=100.0, seed=3,
            permanent_after=10.0,
        )
        assert list(plan.dead_lanes()) == ["ndp"]
        (dead_at,) = plan.dead_lanes().values()
        assert dead_at >= 10.0
        assert all(end <= dead_at for _lane, _s, end in plan.outages)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        retry = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert retry.backoff(1) == pytest.approx(0.1)
        assert retry.backoff(2) == pytest.approx(0.2)
        assert retry.backoff(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError, match="backoff_base"):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ConfigError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError, match="job_timeout"):
            RetryPolicy(job_timeout=0.0)


class TestEmptyPlanBitIdentity:
    """An empty plan is *contractually* a no-op: the executor must keep
    every backend on its normal path and reproduce the exact floats."""

    @pytest.mark.parametrize(
        "backend", ["chain_replay", "dag_replay", "vector_replay", "engine"]
    )
    def test_forced_backends_identical(self, framework, backend):
        # Single-signature coalesced chain batch: the one shard shape
        # every backend accepts.
        sizes = [64] * 12
        plain = framework.run_many(sizes, backend=backend)
        faulted = framework.run_many(sizes, backend=backend, faults=FaultPlan())
        assert _identical_batches(plain.batch_report, faulted.batch_report)
        assert plain.batch_report.backend_jobs == faulted.batch_report.backend_jobs
        assert faulted.resilience is not None
        assert faulted.resilience.availability == 1.0
        assert faulted.resilience.failed_attempts == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_open_queue_batches_identical(self, framework, seed):
        """Property flavor: random mixed batches with random arrivals
        under auto backend selection."""
        rng = random.Random(seed)
        sizes = [rng.choice(SIZES) for _ in range(rng.randint(5, 30))]
        arrivals = sorted(round(rng.random() * 2.0, 9) for _ in sizes)
        plain = framework.run_many(sizes, arrivals=arrivals)
        faulted = framework.run_many(sizes, arrivals=arrivals, faults=FaultPlan())
        # Backend routing may rotate between consecutive calls (the
        # shared tuner is still exploring) — the identity contract is on
        # the simulated floats, which must not move at all.
        assert _identical_batches(plain.batch_report, faulted.batch_report)

    def test_plan_on_untouched_lane_keeps_replay_backends(self, framework):
        """Fault events on a lane the batch never occupies leave every
        shard on its fast replay backend — engine routing only engages
        where the plan actually bites."""
        plan = FaultPlan(outages=(("gpu", 0.0, 1e9),))
        plain = framework.run_many(SIZES)
        faulted = framework.run_many(SIZES, faults=plan)
        assert _identical_batches(plain.batch_report, faulted.batch_report)
        assert "engine" not in faulted.batch_report.backend_jobs
        assert faulted.resilience.availability == 1.0


class TestTransientOutageRetry:
    def test_mid_service_outage_fails_then_recovers_with_backoff(self, framework):
        healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        retry = RetryPolicy(max_attempts=3, backoff_base=0.05)
        result = framework.run_many(SIZES, faults=plan, retry=retry)
        res = result.resilience
        assert res.failed_attempts >= 1
        assert res.recovered >= 1
        assert res.availability == 1.0  # every retry lands post-window

        by_job = {}
        for record in res.attempts:
            by_job.setdefault(record.job_index, []).append(record)
        failed_jobs = 0
        for job, records in by_job.items():
            records.sort(key=lambda r: r.attempt)
            for prev, nxt in zip(records, records[1:]):
                assert not prev.completed
                assert prev.failure_time == t0
                assert prev.failure_lane == "ndp"
                assert prev.failure_kind == "outage"
                # The retry re-enters the queue at exactly
                # fail_time + backoff(attempt), in virtual time.
                assert nxt.release == pytest.approx(
                    prev.failure_time + retry.backoff(prev.attempt)
                )
            assert records[-1].completed
            if len(records) > 1:
                failed_jobs += 1
                # End-to-end latency spans original arrival (t=0 for the
                # closed batch) to the *final* attempt's completion —
                # strictly worse than the healthy completion.
                latency = res.end_to_end_latencies[job]
                assert latency > healthy.batch_report.job_reports[job].total_time
                assert latency > t1 - t0  # waited out the window at least
        assert failed_jobs >= 1

    def test_goodput_below_throughput_when_attempts_fail(self, framework):
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        res = framework.run_many(SIZES, faults=plan).resilience
        assert res.total_attempts > res.completed
        assert res.goodput < res.throughput_all_attempts


class TestDeterminism:
    def test_same_plan_same_report_across_calls(self, framework):
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        first = framework.run_many(SIZES, faults=plan)
        second = framework.run_many(SIZES, faults=plan)
        assert first.resilience.attempts == second.resilience.attempts
        assert (
            first.resilience.end_to_end_latencies
            == second.resilience.end_to_end_latencies
        )
        assert _identical_batches(first.batch_report, second.batch_report)

    def test_forced_engine_matches_auto_routing(self, framework):
        """Faulted shards always run on the engine; the healthy shards'
        backend choice must not leak into the resilience numbers."""
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        auto = framework.run_many(SIZES, faults=plan)
        forced = framework.run_many(SIZES, faults=plan, backend="engine")
        assert auto.resilience.attempts == forced.resilience.attempts
        assert _identical_batches(auto.batch_report, forced.batch_report)

    def test_fresh_framework_reproduces_report(self):
        plan = poisson_fault_plan(["ndp"], mtbf=0.5, mttr=0.1, horizon=10.0, seed=7)
        a = NdftFramework().run_many(SIZES, faults=plan).resilience
        b = NdftFramework().run_many(SIZES, faults=plan).resilience
        assert a.attempts == b.attempts
        assert a.end_to_end_latencies == b.end_to_end_latencies
        assert a.to_json_dict() == b.to_json_dict()


class TestPermanentDegradation:
    def test_dead_ndp_at_release_degrades_to_cpu(self, framework):
        """Every job released at/after the death re-places through the
        exact DP with NDP excluded — no failures, no NDP occupancy, and
        the degraded schedule is exactly scheduler.schedule(exclude=)."""
        plan = FaultPlan(permanent=(("ndp", 0.0),))
        result = framework.run_many(SIZES, faults=plan)
        res = result.resilience
        assert res.failed_attempts == 0
        assert res.availability == 1.0
        assert res.degraded_attempts == res.submitted
        assert "ndp" not in result.batch_report.lane_occupancy
        for run in result.jobs:
            placements = set(run.schedule.assignments.values())
            assert Placement.NDP not in placements
            pipeline = framework._build_pipeline(run.problem, build_pipeline)
            expected = framework.scheduler.schedule(
                pipeline, exclude=frozenset({Placement.NDP})
            )
            assert run.schedule.assignments == expected.assignments

    def test_mid_batch_death_fails_then_degrades(self, framework):
        healthy = framework.run_many(SIZES)
        dead_at = healthy.makespan * 0.5
        plan = FaultPlan(permanent=(("ndp", dead_at),))
        result = framework.run_many(SIZES, faults=plan)
        res = result.resilience
        failed = [r for r in res.attempts if not r.completed]
        assert failed
        assert all(r.failure_kind == "permanent" for r in failed)
        assert all(r.failure_time == dead_at for r in failed)
        # Retries release after the death, so they are degraded — and
        # a degraded attempt cannot fail again on the dead lane.
        retries = [r for r in res.attempts if r.attempt > 1]
        assert retries
        assert all(r.degraded and r.completed for r in retries)
        assert res.availability == 1.0
        assert result.makespan > healthy.makespan

    def test_every_target_excluded_is_refused(self, framework):
        plan = FaultPlan(permanent=(("cpu", 0.0), ("ndp", 0.0)))
        with pytest.raises(Exception, match="excluded"):
            framework.run_many(SIZES, faults=plan)


class TestAbandonment:
    def test_max_attempts_exhaustion_abandons(self, framework):
        _healthy, t0, _t1 = _ndp_window(framework, SIZES)
        # A window that never ends within any retry horizon: every
        # attempt of the affected jobs dies at t0 or inside the window.
        plan = FaultPlan(outages=(("ndp", t0, 1e9),))
        result = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(max_attempts=1)
        )
        res = result.resilience
        assert res.abandoned >= 1
        assert res.availability < 1.0
        for job in res.abandoned_jobs:
            assert res.end_to_end_latencies[job] is None
        # The surfaced batch covers completed jobs only.
        assert result.n_jobs == res.completed

    def test_job_timeout_abandons_before_max_attempts(self, framework):
        _healthy, t0, t1 = _ndp_window(framework, SIZES)
        plan = FaultPlan(outages=(("ndp", t0, t1),))
        unlimited = framework.run_many(
            SIZES, faults=plan, retry=RetryPolicy(max_attempts=5)
        )
        assert unlimited.resilience.availability == 1.0
        # A timeout shorter than any failure time forbids every retry.
        tight = framework.run_many(
            SIZES,
            faults=plan,
            retry=RetryPolicy(max_attempts=5, job_timeout=t0 * 1e-6),
        )
        res = tight.resilience
        assert res.abandoned >= 1
        assert max(r.attempt for r in res.attempts) == 1


class TestGuards:
    def test_retry_without_faults_refused(self, framework):
        with pytest.raises(ConfigError, match="faults="):
            framework.run_many([64], retry=RetryPolicy())

    def test_forced_replay_backend_declines_faulted_shard(self, framework):
        jobs = _jobs(framework, [64] * 4)
        plan = FaultPlan(outages=(("ndp", 0.0, 1.0),))
        for backend in ("chain_replay", "dag_replay", "vector_replay"):
            with pytest.raises(SimulationError) as excinfo:
                framework.executor.execute_many(jobs, backend=backend, faults=plan)
            assert FAULTED_SHARD_REASON in str(excinfo.value)

    def test_degenerate_report_degrades_gracefully(self):
        report = ResilienceReport(plan=FaultPlan(), retry=RetryPolicy())
        assert report.submitted == 0
        assert report.availability == 1.0
        assert report.goodput == 0.0
        assert report.post_fault_p99 == 0.0
        assert report.to_json_dict()["completed"] == 0
