"""DAG pipeline validation, branch-parallel execution and batching."""

import pytest

from repro.core.executor import PipelineExecutor
from repro.core.pipeline import (
    Edge,
    Pipeline,
    build_kpoint_pipeline,
    build_pipeline,
)
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.core.trace import build_timeline, validate_timeline
from repro.dft.workload import problem_size
from repro.errors import ConfigError, SimulationError
from repro.model import PhaseName

from tests.core.dag_helpers import diamond_pipeline, make_stage


@pytest.fixture(scope="module")
def diamond():
    return diamond_pipeline()


class TestDagValidation:
    def test_cycle_rejected(self):
        stages = tuple(make_stage(n, 1e10, 1e9) for n in ("a", "b", "c"))
        edges = (Edge("a", "b", 1.0), Edge("b", "c", 1.0), Edge("c", "a", 1.0))
        with pytest.raises(ConfigError, match="cycle"):
            Pipeline(problem=problem_size(64), stages=stages, edges=edges)

    def test_two_node_cycle_rejected(self):
        stages = tuple(make_stage(n, 1e10, 1e9) for n in ("a", "b"))
        edges = (Edge("a", "b", 1.0), Edge("b", "a", 1.0))
        with pytest.raises(ConfigError, match="cycle"):
            Pipeline(problem=problem_size(64), stages=stages, edges=edges)

    def test_self_edge_rejected(self):
        with pytest.raises(ConfigError, match="self-edge"):
            Edge("a", "a", 1.0)

    def test_unknown_edge_endpoint_rejected(self):
        stages = (make_stage("a", 1e10, 1e9),)
        with pytest.raises(ConfigError, match="unknown stage"):
            Pipeline(
                problem=problem_size(64),
                stages=stages,
                edges=(Edge("a", "ghost", 1.0),),
            )

    def test_duplicate_stage_names_rejected(self):
        stages = (make_stage("a", 1e10, 1e9), make_stage("a", 2e10, 2e9))
        with pytest.raises(ConfigError, match="duplicate"):
            Pipeline(problem=problem_size(64), stages=stages, edges=())

    def test_unknown_stage_lookup(self, diamond):
        with pytest.raises(ConfigError, match="no stage named"):
            diamond.stage("nonexistent")
        with pytest.raises(ConfigError):
            diamond.in_edges("nonexistent")


class TestDagStructure:
    def test_diamond_adjacency(self, diamond):
        assert diamond.predecessors("d") == ("b", "c")
        assert diamond.successors("a") == ("b", "c")
        assert diamond.entry_stages == ("a",)
        assert diamond.exit_stages == ("d",)
        assert not diamond.is_chain

    def test_diamond_topological_order(self, diamond):
        order = diamond.topological_order
        position = {name: i for i, name in enumerate(order)}
        for edge in diamond.edges:
            assert position[edge.src] < position[edge.dst]

    def test_chain_is_chain(self):
        chain = build_pipeline(problem_size(64))
        assert chain.is_chain
        assert chain.topological_order == tuple(chain.stage_names)

    def test_critical_path_excludes_parallel_branch(self, diamond):
        weights = {"a": 1.0, "b": 5.0, "c": 3.0, "d": 2.0}
        assert diamond.critical_path_length(weights.__getitem__) == 8.0


class TestKpointBuilder:
    @pytest.fixture(scope="class")
    def kpoint(self):
        return build_kpoint_pipeline(problem_size(256), n_kpoints=2)

    def test_branch_fan_out_and_in(self, kpoint):
        pseudo = str(PhaseName.PSEUDOPOTENTIAL)
        comm = str(PhaseName.GLOBAL_COMM)
        assert len(kpoint.successors(pseudo)) == 2
        assert len(kpoint.predecessors(comm)) == 2
        assert not kpoint.is_chain

    def test_work_is_conserved(self, kpoint):
        """Splitting into k-point branches must not change total FLOPs."""
        chain = build_pipeline(problem_size(256))
        for phase in (PhaseName.FACE_SPLIT, PhaseName.FFT):
            whole = chain.stage(str(phase)).workload
            parts = [
                kpoint.stage(f"{phase}[k{k}]").workload for k in range(2)
            ]
            assert sum(p.flops for p in parts) == pytest.approx(whole.flops)
            assert sum(p.bytes_total for p in parts) == pytest.approx(
                whole.bytes_total
            )

    def test_invalid_kpoint_count(self):
        with pytest.raises(ConfigError):
            build_kpoint_pipeline(problem_size(64), n_kpoints=0)


class TestDagExecutor:
    def test_diamond_branches_overlap(self, framework, diamond):
        """Independent branches on different devices must run concurrently:
        the DES makespan beats the serialized sum of stage times."""
        schedule = framework.scheduler.evaluate(
            diamond,
            {
                "a": Placement.CPU,
                "b": Placement.CPU,
                "c": Placement.NDP,
                "d": Placement.CPU,
            },
        )
        report = framework.executor.execute(diamond, schedule)
        stage_sum = sum(report.phase_seconds.values())
        assert report.total_time < stage_sum
        # ... and the saving is real overlap, not rounding: the shorter
        # branch is fully hidden (plus at most its boundary transfer).
        shorter = min(
            report.phase_seconds["b"], report.phase_seconds["c"]
        )
        saving = stage_sum + report.scheduling_overhead - report.total_time
        assert shorter * (1 - 1e-9) <= saving
        assert saving <= shorter + report.scheduling_overhead + 1e-9

    def test_diamond_timeline_shows_concurrency(self, framework, diamond):
        schedule = framework.scheduler.evaluate(
            diamond,
            {
                "a": Placement.CPU,
                "b": Placement.CPU,
                "c": Placement.NDP,
                "d": Placement.CPU,
            },
        )
        events = build_timeline(diamond, schedule, framework.cost_model)
        validate_timeline(events)  # per-lane occupancy stays exclusive
        b = next(e for e in events if e.label == "b")
        c = next(e for e in events if e.label == "c")
        assert b.start < c.end and c.start < b.end  # genuine overlap

    def test_same_device_branches_serialize(self, framework, diamond):
        """Both branches on one device: capacity 1 forces serialization and
        the makespan returns to the serial sum."""
        schedule = framework.scheduler.evaluate(
            diamond, {n: Placement.CPU for n in diamond.stage_names}
        )
        report = framework.executor.execute(diamond, schedule)
        assert report.total_time == pytest.approx(
            sum(report.phase_seconds.values()), rel=1e-9
        )

    def test_kpoint_dag_executes(self, framework):
        pipeline = build_kpoint_pipeline(problem_size(256), n_kpoints=2)
        result = framework.run(pipeline=pipeline)
        assert result.total_time > 0
        assert set(result.report.phase_seconds) == set(pipeline.stage_names)


class TestBatchExecutor:
    def test_empty_batch_rejected(self, framework):
        with pytest.raises(SimulationError, match="at least one job"):
            framework.executor.execute_many([])

    def test_mixed_batch_overlaps(self, framework):
        """Si_64 + Si_512 through one shared machine: aggregate makespan
        below the sum of the standalone runs (the acceptance criterion for
        the batching front-end)."""
        batch = framework.run_many([64, 512])
        assert batch.n_jobs == 2
        assert batch.makespan < batch.serial_time
        assert batch.batching_speedup > 1.0
        assert batch.throughput == pytest.approx(2 / batch.makespan)

    def test_batch_jobs_no_faster_than_solo(self, framework):
        """Sharing can only delay an individual job, never speed it up."""
        batch = framework.run_many([64, 512])
        for job, solo in zip(batch.jobs, batch.solo_times):
            assert job.report.total_time >= solo * (1 - 1e-9)

    def test_batch_report_consistency(self, framework):
        batch = framework.run_many([64, 64])
        assert batch.makespan == pytest.approx(
            max(job.report.total_time for job in batch.jobs)
        )
        completion = batch.job_completion_times()
        # Duplicate sizes stay distinct entries, one per submitted job.
        assert [label for label, _t in completion] == ["Si_64", "Si_64"]
        assert all(t > 0 for _label, t in completion)

    def test_executor_batch_matches_framework(self, framework):
        """The executor-level API and the framework front-end agree."""
        jobs = []
        for n in (64, 512):
            pipeline = build_pipeline(problem_size(n))
            schedule = framework.scheduler.schedule(
                pipeline, SchedulingPolicy.COST_AWARE
            )
            jobs.append((pipeline, schedule))
        report = PipelineExecutor(
            cost_model=framework.cost_model
        ).execute_many(jobs)
        batch = framework.run_many([64, 512])
        assert report.makespan == pytest.approx(batch.makespan, rel=1e-12)
