"""The DAG-replay backend and the simulation-backend layer.

The DAG replay (:func:`repro.hw.engine.replay_dag_batch`, selected by
the ``dag_replay`` backend) must reproduce the generator engine's floats
bit for bit on *branching* pipelines — k-point DAGs, random synthetic
DAGs, constructed exact-time tie storms on fan-in joins — the same way
``tests/core/test_coalesce_shard.py`` pins the chain replay.  This file
also covers the backend registry semantics: selection order, forced
backends, observer and zero-duration fallbacks, and the framework's
``backend_stats`` counters.
"""

import random

import pytest

from tests.core.dag_helpers import random_pipeline
from repro.core.backends import backend_names, get_backend
from repro.core.cost_model import OffloadCostModel
from repro.core.executor import PipelineExecutor
from repro.core.framework import NdftFramework
from repro.core.ir import function_from_workload
from repro.core.pipeline import Edge, Pipeline, Stage, build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import Placement, Schedule, SchedulingPolicy
from repro.dft.workload import problem_size
from repro.errors import SimulationError
from repro.hw.engine import EventCalendar
from repro.hw.interconnect import HostLink
from repro.hw.timing import PhaseTime
from repro.model import KernelWorkload

SIZES = (16, 64, 128, 512, 1024)


def _jobs(framework, entries):
    """(pipeline, schedule) pairs resolved through the framework caches,
    so duplicate entries share objects — the coalescing precondition."""
    jobs = []
    for n_atoms, builder in entries:
        pipeline = framework._build_pipeline(problem_size(n_atoms), builder)
        schedule = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        jobs.append((pipeline, schedule))
    return jobs


def _kpoint_builder(n_kpoints):
    def build(problem):
        return build_kpoint_pipeline(problem, n_kpoints)

    return build


class TestDagReplayEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_kpoint_batches_identical(self, framework, seed):
        """Random k-point batches (mixed fan widths and sizes, sometimes
        an open queue): replay vs the uncollapsed engine vs the
        observer-forced engine — every float identical."""
        rng = random.Random(seed)
        entries = [
            (rng.choice(SIZES), _kpoint_builder(rng.choice((2, 3, 4))))
            for _ in range(rng.randint(2, 24))
        ]
        jobs = _jobs(framework, entries)
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 10, 3) for _ in jobs]
        fast = framework.executor.execute_many(jobs, arrivals=arrivals)
        slow = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        observed = framework.executor.execute_many(
            jobs, arrivals=arrivals, observer=lambda *args: None
        )
        assert fast.makespan == slow.makespan == observed.makespan
        assert fast.job_reports == slow.job_reports == observed.job_reports
        # Branching jobs ran the slim replay, not the engine.
        assert fast.backend_jobs == {"dag_replay": len(jobs)}

    @pytest.mark.parametrize("seed", [10, 11, 12, 13])
    def test_random_synthetic_dag_batches_identical(self, framework, seed):
        """Random connected DAGs (1-3 predecessors per stage — much
        denser fan-in than the k-point shape): replay vs engine."""
        rng = random.Random(seed)
        jobs = []
        for _ in range(rng.randint(2, 8)):
            pipeline = random_pipeline(rng, rng.randint(3, 9))
            schedule = framework.scheduler.schedule(
                pipeline, SchedulingPolicy.COST_AWARE
            )
            jobs.append((pipeline, schedule))
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 2, 3) for _ in jobs]
        fast = framework.executor.execute_many(jobs, arrivals=arrivals)
        slow = framework.executor.execute_many(
            jobs, arrivals=arrivals, coalesce=False, shard=False
        )
        assert fast.makespan == slow.makespan
        assert fast.job_reports == slow.job_reports

    def test_mixed_chain_and_dag_shard_takes_dag_replay(self, framework):
        """A shard mixing chains with one DAG cannot use the chain
        replay, but no longer forces the engine either."""
        jobs = _jobs(
            framework,
            [(64, build_pipeline), (64, build_kpoint_pipeline)] * 3,
        )
        fast = framework.executor.execute_many(jobs)
        slow = framework.executor.execute_many(
            jobs, coalesce=False, shard=False
        )
        assert fast.backend_jobs == {"dag_replay": len(jobs)}
        assert fast.n_superjobs == 2
        assert fast.job_reports == slow.job_reports

    def test_run_many_kpoint_toggles_identical(self):
        sizes = [64, 1024, 64, 512, 128, 64]
        fast = NdftFramework().run_many(
            sizes, pipeline_builder=build_kpoint_pipeline
        )
        slow = NdftFramework().run_many(
            sizes,
            pipeline_builder=build_kpoint_pipeline,
            coalesce=False,
            shard=False,
        )
        assert fast.makespan == slow.makespan
        assert fast.solo_times == slow.solo_times
        assert (
            fast.batch_report.job_reports == slow.batch_report.job_reports
        )


# ---------------------------------------------------------------------------
# Hand-built DAG jobs with exact round-number durations
# ---------------------------------------------------------------------------


def _toy_dag(label, stage_names, edge_spec):
    """A hand-built DAG pipeline with unit workloads, for constructing
    same-instant event ties; ``edge_spec`` is (src, dst, nbytes)."""
    stages = []
    for name in stage_names:
        workload = KernelWorkload(
            name=f"{label}{name}", flops=1.0, bytes_read=1.0, bytes_written=1.0
        )
        stages.append(
            Stage(
                name=f"{label}{name}",
                workload=workload,
                function=function_from_workload(
                    workload, live_in_bytes=1.0, live_out_bytes=1.0
                ),
            )
        )
    edges = tuple(
        Edge(src=f"{label}{src}", dst=f"{label}{dst}", nbytes=nbytes)
        for src, dst, nbytes in edge_spec
    )
    return Pipeline(
        problem=problem_size(8), stages=tuple(stages), edges=edges
    )


def _toy_schedule(pipeline, placements, durations, cost_model):
    assignments = {
        stage.name: placement
        for stage, placement in zip(pipeline.stages, placements)
    }
    crossing = [
        edge
        for edge in pipeline.edges
        if assignments[edge.src] is not assignments[edge.dst]
    ]
    overhead = sum(
        cost_model.boundary_cost(
            e.nbytes, (assignments[e.src], assignments[e.dst])
        )
        for e in crossing
    )
    stage_times = {
        stage.name: PhaseTime(
            name=stage.name, compute_time=duration, memory_time=duration
        )
        for stage, duration in zip(pipeline.stages, durations)
    }
    return Schedule(
        policy=SchedulingPolicy.COST_AWARE,
        assignments=assignments,
        stage_times=stage_times,
        crossing_bytes=tuple(e.nbytes for e in crossing),
        scheduling_overhead=overhead,
        predicted_total=sum(durations) + overhead,
        crossing_pairs=tuple(
            (assignments[e.src], assignments[e.dst]) for e in crossing
        ),
    )


def _round_cost_model(context_switch=0.25):
    return OffloadCostModel(
        host_link=HostLink(bandwidth=1.0, base_latency=0.0),
        context_switch=context_switch,
    )


def _diamond_tie_job(label, cost_model):
    """a -> (b, c) -> d where both branches complete at exactly t=3.0:
    b stays on the CPU (1.0 + 2.0), c crosses to the NDP (transfer
    0.25/1.0 + 0.25 CXT = 0.5, then 1.5) — an exact-time tie on d's
    fan-in join, resolved by the engine's cascade order."""
    pipeline = _toy_dag(
        label,
        ("a", "b", "c", "d"),
        (("a", "b", 0.0), ("a", "c", 0.25), ("b", "d", 0.0), ("c", "d", 0.25)),
    )
    schedule = _toy_schedule(
        pipeline,
        (Placement.CPU, Placement.CPU, Placement.NDP, Placement.CPU),
        (1.0, 2.0, 1.5, 1.0),
        cost_model,
    )
    return pipeline, schedule


class TestExactTimeTiesOnFanIn:
    def test_fan_in_join_tie_matches_engine(self):
        cost_model = _round_cost_model()
        executor = PipelineExecutor(cost_model=cost_model)
        jobs = [_diamond_tie_job("y", cost_model)]
        fast = executor.execute_many(jobs)
        slow = executor.execute_many(jobs, coalesce=False, shard=False)
        assert fast.backend_jobs == {"dag_replay": 1}
        assert fast.job_reports == slow.job_reports
        assert fast.makespan == slow.makespan
        # The tie is real: both branches hand d their data at t=3.0, and
        # d's transfer (0.25/1.0 + 0.25) plus 1.0 compute lands at 4.5.
        assert slow.job_reports[0].total_time == 4.5

    @pytest.mark.parametrize("order", [0, 1])
    def test_fan_in_tie_storms_across_replicas(self, order):
        """Several identical diamonds plus a round-number chain, two
        interleavings, with and without arrivals: every completion
        collides with others at integer instants, including on fan-in
        joins — the replay must grant, wake and re-request in exactly
        the engine's cascade order."""
        cost_model = _round_cost_model(context_switch=0.5)
        executor = PipelineExecutor(cost_model=cost_model)
        diamond = _diamond_tie_job("y", cost_model)
        chain = _toy_dag("x", ("0", "1", "2"), (("0", "1", 0.0), ("1", "2", 0.0)))
        chain_schedule = _toy_schedule(
            chain,
            (Placement.CPU, Placement.CPU, Placement.CPU),
            (1.0, 1.0, 1.0),
            cost_model,
        )
        jobs = [diamond, (chain, chain_schedule)] * 4
        if order:
            jobs = jobs[::-1]
        for arrivals in (None, [0.0, 1.0] * 4, [0.5] * 8):
            fast = executor.execute_many(jobs, arrivals=arrivals)
            slow = executor.execute_many(
                jobs, arrivals=arrivals, coalesce=False, shard=False
            )
            assert fast.job_reports == slow.job_reports
            assert fast.makespan == slow.makespan

    def test_wide_fan_in_with_skipped_predecessors(self):
        """A stage joining three predecessors that finish at different
        (and partly identical) instants exercises the finished-
        predecessor skip hops of the wait loop."""
        cost_model = _round_cost_model()
        executor = PipelineExecutor(cost_model=cost_model)
        pipeline = _toy_dag(
            "w",
            ("a", "b", "c", "d", "e"),
            (
                ("a", "b", 0.0),
                ("a", "c", 0.25),
                ("a", "d", 0.25),
                ("b", "e", 0.0),
                ("c", "e", 0.25),
                ("d", "e", 0.25),
            ),
        )
        schedule = _toy_schedule(
            pipeline,
            (
                Placement.CPU,
                Placement.CPU,
                Placement.NDP,
                Placement.NDP,
                Placement.CPU,
            ),
            (1.0, 2.0, 1.5, 1.0, 1.0),
            cost_model,
        )
        jobs = [(pipeline, schedule)] * 6
        for arrivals in (None, [0.0, 1.0, 2.0] * 2):
            fast = executor.execute_many(jobs, arrivals=arrivals)
            slow = executor.execute_many(
                jobs, arrivals=arrivals, coalesce=False, shard=False
            )
            assert fast.job_reports == slow.job_reports
            assert fast.makespan == slow.makespan


class TestLaneOccupancyEquivalence:
    """Per-lane busy accounting is part of the backend contract: every
    backend must record the *same* occupancy intervals — the engine's
    exact floats, in grant order — so ``lane_utilization`` is safe to
    trend whichever simulator ran."""

    @pytest.mark.parametrize("seed", [20, 21, 22, 23])
    def test_chain_batches_identical_across_all_backends(self, framework, seed):
        """Random chain batches support every backend, so all three can
        be compared pairwise on the same shard."""
        rng = random.Random(seed)
        entries = [
            (rng.choice(SIZES), build_pipeline)
            for _ in range(rng.randint(2, 16))
        ]
        jobs = _jobs(framework, entries)
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 5, 3) for _ in jobs]
        chain = framework.executor.execute_many(jobs, arrivals=arrivals)
        dag = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="dag_replay"
        )
        engine = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="engine"
        )
        assert chain.backend_jobs == {"chain_replay": len(jobs)}
        assert dag.backend_jobs == {"dag_replay": len(jobs)}
        assert chain.lane_occupancy == dag.lane_occupancy
        assert chain.lane_occupancy == engine.lane_occupancy
        assert chain.lane_occupancy  # the accounting is actually on

    @pytest.mark.parametrize("seed", [30, 31, 32, 33])
    def test_kpoint_batches_identical_dag_vs_engine(self, framework, seed):
        rng = random.Random(seed)
        entries = [
            (rng.choice(SIZES), _kpoint_builder(rng.choice((2, 3, 4))))
            for _ in range(rng.randint(2, 12))
        ]
        jobs = _jobs(framework, entries)
        arrivals = None
        if seed % 2:
            arrivals = [round(rng.random() * 8, 3) for _ in jobs]
        fast = framework.executor.execute_many(jobs, arrivals=arrivals)
        slow = framework.executor.execute_many(
            jobs, arrivals=arrivals, backend="engine"
        )
        assert fast.backend_jobs == {"dag_replay": len(jobs)}
        assert fast.lane_occupancy == slow.lane_occupancy

    def test_tie_storms_record_identical_lanes(self):
        """Constructed same-instant collisions (the banded-cascade
        cases) must grant — and therefore account — identically."""
        cost_model = _round_cost_model(context_switch=0.5)
        executor = PipelineExecutor(cost_model=cost_model)
        diamond = _diamond_tie_job("y", cost_model)
        chain = _toy_dag(
            "x", ("0", "1", "2"), (("0", "1", 0.0), ("1", "2", 0.0))
        )
        chain_schedule = _toy_schedule(
            chain,
            (Placement.CPU, Placement.CPU, Placement.CPU),
            (1.0, 1.0, 1.0),
            cost_model,
        )
        jobs = [diamond, (chain, chain_schedule)] * 4
        for arrivals in (None, [0.0, 1.0] * 4, [0.5] * 8):
            fast = executor.execute_many(jobs, arrivals=arrivals)
            slow = executor.execute_many(
                jobs, arrivals=arrivals, backend="engine"
            )
            assert fast.lane_occupancy == slow.lane_occupancy

    def test_observer_path_also_accounts_lanes(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 3)
        plain = framework.executor.execute_many(jobs)
        observed = framework.executor.execute_many(
            jobs, observer=lambda *args: None
        )
        assert observed.lane_occupancy == plain.lane_occupancy

    def test_busy_and_utilization_derive_from_intervals(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline), (512, build_pipeline)])
        report = framework.executor.execute_many(jobs)
        for lane, intervals in report.lane_occupancy.items():
            assert all(end > start for start, end in intervals)
            # Occupancies on one capacity-1 lane never overlap.
            assert all(
                later_start >= earlier_end
                for (_s, earlier_end), (later_start, _e) in zip(
                    intervals, intervals[1:]
                )
            )
            busy = sum(end - start for start, end in intervals)
            assert report.lane_busy_seconds[lane] == busy
            assert report.lane_utilization[lane] == busy / report.busy_span
        assert max(report.lane_utilization.values()) <= 1.0 + 1e-12


class TestBackendFallbacks:
    def test_observer_forces_engine_backend(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 4)
        observed = framework.executor.execute_many(
            jobs, observer=lambda *args: None
        )
        assert observed.backend_jobs == {"engine": 4}
        assert observed.n_shards == 1
        assert observed.n_superjobs == 0
        events = []
        framework.executor.execute_many(
            jobs,
            observer=lambda lane, label, start, end: events.append(label),
        )
        for index in range(len(jobs)):
            assert any(label.startswith(f"job{index}:") for label in events)

    def test_zero_duration_task_falls_back_to_engine(self):
        """A zero-duration stage (possible only under degenerate custom
        cost models) declines both replays; the engine still times it,
        and the numbers agree with the uncollapsed path."""
        cost_model = _round_cost_model()
        executor = PipelineExecutor(cost_model=cost_model)
        pipeline = _toy_dag(
            "z", ("a", "b", "c"), (("a", "b", 0.0), ("a", "c", 0.0))
        )
        schedule = _toy_schedule(
            pipeline,
            (Placement.CPU, Placement.CPU, Placement.NDP),
            (1.0, 0.0, 1.0),
            cost_model,
        )
        jobs = [(pipeline, schedule)] * 3
        fast = executor.execute_many(jobs)
        slow = executor.execute_many(jobs, coalesce=False, shard=False)
        assert fast.backend_jobs == {"engine": 3}
        assert fast.n_superjobs == 0
        assert fast.job_reports == slow.job_reports
        assert fast.makespan == slow.makespan


class TestBackendRegistry:
    def test_registry_order_prefers_replays(self):
        names = backend_names()
        assert names[-1] == "engine"
        assert names.index("chain_replay") < names.index("dag_replay")

    def test_unknown_backend_rejected(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)])
        with pytest.raises(SimulationError):
            framework.executor.execute_many(jobs, backend="nonsense")
        with pytest.raises(SimulationError):
            get_backend("nonsense")

    def test_forced_engine_matches_auto_selection(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 4)
        auto = framework.executor.execute_many(jobs)
        forced = framework.executor.execute_many(jobs, backend="engine")
        assert forced.backend_jobs == {"engine": 4}
        assert auto.backend_jobs == {"dag_replay": 4}
        assert auto.job_reports == forced.job_reports
        assert auto.makespan == forced.makespan

    def test_forced_chain_replay_rejects_dag_shard(self, framework):
        jobs = _jobs(framework, [(64, build_kpoint_pipeline)] * 2)
        with pytest.raises(SimulationError):
            framework.executor.execute_many(jobs, backend="chain_replay")

    def test_forced_nonengine_backend_rejects_observer(self, framework):
        jobs = _jobs(framework, [(64, build_pipeline)] * 2)
        with pytest.raises(SimulationError):
            framework.executor.execute_many(
                jobs, backend="dag_replay", observer=lambda *args: None
            )

    def test_forced_nonengine_backend_rejects_coalesce_off(self, framework):
        """coalesce=False pins the uncollapsed engine semantics; forcing
        a replay (which coalesces by construction) contradicts it."""
        jobs = _jobs(framework, [(64, build_pipeline)] * 2)
        with pytest.raises(SimulationError):
            framework.executor.execute_many(
                jobs, backend="chain_replay", coalesce=False
            )
        # Forcing the engine is consistent with coalesce=False.
        report = framework.executor.execute_many(
            jobs, backend="engine", coalesce=False
        )
        assert report.backend_jobs == {"engine": 2}

    def test_framework_backend_stats_accumulate(self):
        framework = NdftFramework()
        stats = framework.backend_stats
        assert set(backend_names()) <= set(stats)
        assert all(count == 0 for count in stats.values())
        framework.run_many([64, 128, 512])
        framework.run_many(
            [64, 128], pipeline_builder=build_kpoint_pipeline
        )
        stats = framework.backend_stats
        assert stats["chain_replay"] == 3
        assert stats["dag_replay"] == 2
        assert stats["engine"] == 0
        framework.run_many([64], backend="engine")
        assert framework.backend_stats["engine"] == 1


class TestEventCalendar:
    def test_pop_orders_by_time_then_fifo(self):
        calendar = EventCalendar(4)
        calendar.push(2.0, "late")
        calendar.push(1.0, "early")
        calendar.push(1.0, "early-second")
        calendar.push(0.5, "first")
        drained = [calendar.pop() for _ in range(len(calendar))]
        assert drained == [
            (0.5, "first"),
            (1.0, "early"),
            (1.0, "early-second"),
            (2.0, "late"),
        ]

    def test_seed_bulk_load_is_a_valid_heap(self):
        calendar = EventCalendar(3)
        calendar.seed([(0.0, "a"), (0.0, "b"), (1.0, "c")])
        calendar.push(0.5, "d")
        drained = [calendar.pop()[1] for _ in range(len(calendar))]
        assert drained == ["a", "b", "d", "c"]

    def test_payload_grows_beyond_capacity(self):
        calendar = EventCalendar(1)
        for i in range(5):
            calendar.push(float(i), i)
        assert [calendar.pop()[1] for _ in range(len(calendar))] == list(
            range(5)
        )
