"""Execution-timeline tracer."""

import pytest

from repro.core.pipeline import build_pipeline
from repro.core.scheduler import SchedulingPolicy
from repro.core.trace import (
    TraceEvent,
    build_timeline,
    render_gantt,
    total_time,
    validate_timeline,
)
from repro.dft.workload import problem_size
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def traced(framework):
    pipeline = build_pipeline(problem_size(1024))
    schedule = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
    events = build_timeline(pipeline, schedule, framework.cost_model)
    return pipeline, schedule, events


class TestTimeline:
    def test_every_stage_present(self, traced):
        pipeline, _schedule, events = traced
        labels = {e.label for e in events if e.lane in ("cpu", "ndp")}
        assert labels == set(pipeline.stage_names)

    def test_no_lane_overlap(self, traced):
        _pipeline, _schedule, events = traced
        validate_timeline(events)  # must not raise

    def test_total_matches_executor(self, framework, traced):
        pipeline, schedule, events = traced
        report = framework.executor.execute(pipeline, schedule)
        assert total_time(events) == pytest.approx(report.total_time, rel=1e-9)

    def test_link_events_only_at_boundaries(self, traced):
        _pipeline, schedule, events = traced
        link_events = [e for e in events if e.lane.startswith("link")]
        assert len(link_events) == schedule.n_boundaries
        # the chain only ever crosses the CPU<->NDP wire
        assert {e.lane for e in link_events} == {"link:cpu-ndp"}

    def test_overlap_detection(self):
        events = [
            TraceEvent("cpu", "a", 0.0, 2.0),
            TraceEvent("cpu", "b", 1.0, 3.0),
        ]
        with pytest.raises(SimulationError):
            validate_timeline(events)

    def test_bad_event_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent("cpu", "x", 2.0, 1.0)

    def test_gantt_renders(self, traced):
        _pipeline, _schedule, events = traced
        chart = render_gantt(events)
        assert "timeline:" in chart
        assert "cpu" in chart and "ndp" in chart

    def test_empty_gantt(self):
        assert render_gantt([]) == "(empty timeline)"
