"""Bounded signature caches (LRU) and the warm-started placement DP."""

import pytest

from repro.core.framework import NdftFramework
from repro.core.lru import LruCache
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import SchedulingPolicy
from repro.dft.workload import problem_size


class TestLruCache:
    def test_hit_miss_counters(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.evictions == 0

    def test_eviction_is_lru_order(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_unbounded_never_evicts(self):
        cache = LruCache(maxsize=None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LruCache(maxsize=1)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts "a"
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert not cache
        assert cache.evictions == 1
        assert cache.hits == 1

    def test_dict_equality_and_len(self):
        cache = LruCache()
        assert cache == {}
        cache.put("a", 1)
        assert cache == {"a": 1}
        assert len(cache) == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)


class TestBoundedFrameworkCaches:
    def test_eviction_never_changes_results(self):
        """A cache_size=1 framework thrashes every cache on the mixed
        batch yet reports the same floats as an unbounded one — eviction
        is a capacity decision, never a semantic one."""
        sizes = [64, 512, 64, 1024, 128, 512, 64]
        tiny = NdftFramework(cache_size=1)
        unbounded = NdftFramework(cache_size=None)
        tight = tiny.run_many(sizes)
        loose = unbounded.run_many(sizes)
        assert tiny.cache_stats["schedule_evictions"] > 0
        assert unbounded.cache_stats["schedule_evictions"] == 0
        assert tight.makespan == loose.makespan
        assert tight.solo_times == loose.solo_times
        assert (
            tight.batch_report.job_reports == loose.batch_report.job_reports
        )

    def test_eviction_counters_in_cache_stats(self):
        framework = NdftFramework(cache_size=2)
        framework.run_many([64, 128, 512, 1024])
        stats = framework.cache_stats
        for kind in ("pipeline", "schedule", "solo", "sca", "signature"):
            assert f"{kind}_evictions" in stats
        assert stats["schedule_evictions"] >= 2
        # Within the bound nothing is evicted.
        roomy = NdftFramework(cache_size=4)
        roomy.run_many([64, 128, 512, 1024])
        assert roomy.cache_stats["schedule_evictions"] == 0

    def test_default_bound_is_finite(self):
        framework = NdftFramework()
        assert framework.cache_size == NdftFramework.DEFAULT_CACHE_SIZE
        assert framework._schedule_cache.maxsize == framework.cache_size


class TestWarmStartedPlacementDp:
    def test_warm_start_hits_counted(self):
        framework = NdftFramework()
        framework.run_many([64, 128, 512, 1024])
        stats = framework.cache_stats
        # First distinct size is a cold search, the rest warm-start off
        # the nearest same-structure neighbor.
        assert stats["warm_start_misses"] == 1
        assert stats["warm_start_hits"] == 3

    @pytest.mark.parametrize("n_atoms", [16, 64, 200, 512, 1024, 2048])
    def test_warm_started_schedule_is_exact_optimum(self, n_atoms):
        """The warm-start bound only prunes provably suboptimal DP
        states: the hinted search returns the *same* schedule (same
        assignments, same floats) as a cold search — cross-checked
        against the exhaustive oracle as well."""
        framework = NdftFramework()
        framework.run(n_atoms=4000)  # seed the warm-start index far away
        pipeline = build_pipeline(problem_size(n_atoms))
        hinted = framework._schedule_for(
            pipeline, framework.job_signature(pipeline)
        )
        assert framework.cache_stats["warm_start_hits"] >= 1
        cold = framework.scheduler._dag_optimal(pipeline)
        oracle = framework.scheduler._exhaustive_best(pipeline)
        assert hinted.assignments == cold.assignments
        assert hinted.predicted_total == cold.predicted_total
        assert hinted.predicted_total == oracle.predicted_total

    def test_warm_start_is_structure_scoped(self):
        """A chain placement never seeds a k-point DAG search (different
        stage names -> different structure signature)."""
        framework = NdftFramework()
        framework.run(n_atoms=512)
        framework.run_many([512], pipeline_builder=build_kpoint_pipeline)
        assert framework.cache_stats["warm_start_hits"] == 0
        assert framework.cache_stats["warm_start_misses"] == 2

    def test_invalid_hint_degrades_to_cold_search(self):
        framework = NdftFramework()
        pipeline = build_pipeline(problem_size(64))
        cold = framework.scheduler._dag_optimal(pipeline)
        stale = framework.scheduler._dag_optimal(
            pipeline, warm_start={"not-a-stage": None}
        )
        assert stale.assignments == cold.assignments
        assert stale.predicted_total == cold.predicted_total

    def test_non_cost_aware_policies_skip_warm_start(self):
        framework = NdftFramework(policy=SchedulingPolicy.ALL_NDP)
        framework.run_many([64, 128, 512])
        assert framework.cache_stats["warm_start_hits"] == 0
        assert framework.cache_stats["warm_start_misses"] == 0

    def test_register_target_drops_warm_start_index(self, ndp_model):
        from repro.core.scheduler import Placement

        framework = NdftFramework()
        framework.run(n_atoms=512)
        assert framework._warm_start_index
        framework.register_target(Placement.NDP, ndp_model)
        assert not framework._warm_start_index


def _renamed(pipeline, prefix):
    """The same pipeline under different stage names — the shape the
    name-normalized structure signature must treat as one structure."""
    from repro.core.pipeline import Edge, Pipeline, Stage

    stages = tuple(
        Stage(
            name=f"{prefix}{stage.name}",
            workload=stage.workload,
            function=stage.function,
        )
        for stage in pipeline.stages
    )
    edges = tuple(
        Edge(
            src=f"{prefix}{edge.src}",
            dst=f"{prefix}{edge.dst}",
            nbytes=edge.nbytes,
        )
        for edge in pipeline.edges
    )
    return Pipeline(problem=pipeline.problem, stages=stages, edges=edges)


class TestNameNormalizedWarmStart:
    def test_renamed_same_shape_pipeline_hits_warm_start(self):
        """A same-shape pipeline whose stages are merely labelled
        differently warm-starts off the original's placement instead of
        restarting cold — counter-verified, and still the exact
        optimum."""
        framework = NdftFramework()
        framework.run(n_atoms=64)  # seeds the 6-chain structure
        assert framework.cache_stats["warm_start_hits"] == 0
        renamed = _renamed(build_pipeline(problem_size(512)), "alias_")
        hinted = framework._schedule_for(
            renamed, framework.job_signature(renamed)
        )
        stats = framework.cache_stats
        assert stats["warm_start_hits"] == 1
        cold = framework.scheduler._dag_optimal(renamed)
        assert hinted.assignments == cold.assignments
        assert hinted.predicted_total == cold.predicted_total

    def test_renamed_kpoint_dag_hits_warm_start(self):
        framework = NdftFramework()
        framework.run_many([64], pipeline_builder=build_kpoint_pipeline)
        renamed = _renamed(
            build_kpoint_pipeline(problem_size(512)), "other/"
        )
        framework._schedule_for(renamed, framework.job_signature(renamed))
        assert framework.cache_stats["warm_start_hits"] == 1

    def test_normalize_rehydrate_round_trip(self):
        from repro.core.scheduler import CostAwareScheduler

        framework = NdftFramework()
        pipeline = build_pipeline(problem_size(64))
        schedule = framework.scheduler.schedule(pipeline)
        normalized = CostAwareScheduler.normalize_placements(
            pipeline, schedule.assignments
        )
        assert CostAwareScheduler.rehydrate_placements(
            pipeline, normalized
        ) == schedule.assignments
        # Length mismatch degrades to no hint, never an error.
        assert (
            CostAwareScheduler.rehydrate_placements(
                pipeline, normalized[:-1]
            )
            is None
        )
