"""Kernel IR and the static-code-analyzer substitute."""

import pytest

from repro.core.ir import CodeSegment, KernelFunction, function_from_workload
from repro.core.sca import StaticCodeAnalyzer
from repro.dft.workload import problem_size, stage_workloads
from repro.errors import ConfigError
from repro.hw.roofline import RooflineModel
from repro.model import AccessPattern, PhaseName


def seg(name, flops, nbytes, pattern=AccessPattern.SEQUENTIAL):
    return CodeSegment(
        name=name, flops=flops, bytes_read=nbytes * 0.6,
        bytes_written=nbytes * 0.4, access_pattern=pattern, instructions=100,
    )


class TestIr:
    def test_function_aggregates(self):
        fn = KernelFunction(
            name="f",
            segments=(seg("a", 100, 50), seg("b", 300, 150)),
            live_in_bytes=10,
            live_out_bytes=20,
        )
        assert fn.flops == 400
        assert fn.bytes_total == 200
        assert fn.arithmetic_intensity == pytest.approx(2.0)
        assert fn.instructions == 200

    def test_consistency_uniform_segments(self):
        fn = KernelFunction(
            name="f", segments=(seg("a", 100, 50), seg("b", 200, 100)),
            live_in_bytes=0, live_out_bytes=0,
        )
        assert fn.intensity_consistency() == pytest.approx(1.0)

    def test_consistency_mixed_segments(self):
        fn = KernelFunction(
            name="f",
            segments=(seg("compute", 10000, 10), seg("stream", 10, 10000)),
            live_in_bytes=0, live_out_bytes=0,
        )
        assert fn.intensity_consistency() < 0.7

    def test_empty_function_rejected(self):
        with pytest.raises(ConfigError):
            KernelFunction(name="f", segments=(), live_in_bytes=0, live_out_bytes=0)

    def test_from_workload_splits_evenly(self):
        workload = stage_workloads(problem_size(64))[PhaseName.FFT]
        fn = function_from_workload(workload, 100.0, 200.0, n_segments=5)
        assert len(fn.segments) == 5
        assert fn.flops == pytest.approx(workload.flops)
        assert fn.intensity_consistency() == pytest.approx(1.0)
        assert fn.workload is workload


class TestSca:
    @pytest.fixture(scope="class")
    def sca(self):
        return StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(name="cpu", peak_flops=1e12, peak_bandwidth=1e11),
            ndp_roofline=RooflineModel(name="ndp", peak_flops=2e12, peak_bandwidth=4e12),
        )

    def test_memory_bound_prefers_ndp(self, sca):
        fn = KernelFunction(
            name="stream", segments=(seg("s", 1e9, 1e10),),
            live_in_bytes=1e8, live_out_bytes=1e8,
        )
        report = sca.analyze(fn)
        assert report.boundedness == "memory"
        assert report.prefers_ndp

    def test_compute_bound_prefers_cpu_when_cpu_stronger(self):
        sca = StaticCodeAnalyzer(
            cpu_roofline=RooflineModel(name="cpu", peak_flops=1e12, peak_bandwidth=1e11),
            ndp_roofline=RooflineModel(name="ndp", peak_flops=2e11, peak_bandwidth=4e12),
        )
        fn = KernelFunction(
            name="gemm",
            segments=(seg("g", 1e12, 1e9, AccessPattern.BLOCKED),),
            live_in_bytes=1e7, live_out_bytes=1e7,
        )
        report = sca.analyze(fn)
        assert report.boundedness == "compute"
        assert not report.prefers_ndp

    def test_transfer_sets_from_live_data(self, sca):
        fn = KernelFunction(
            name="f", segments=(seg("s", 10, 10),),
            live_in_bytes=123.0, live_out_bytes=456.0,
        )
        report = sca.analyze(fn)
        assert report.transfer_in_bytes == 123.0
        assert report.transfer_out_bytes == 456.0

    def test_analyze_all_lrtddft_functions(self, sca):
        from repro.core.pipeline import build_pipeline

        pipeline = build_pipeline(problem_size(64))
        reports = sca.analyze_all([s.function for s in pipeline.stages])
        assert set(reports) == set(pipeline.stage_names)
        # Fig. 4 facts visible to the analyzer:
        assert reports["fft"].boundedness == "memory"
        assert reports["gemm"].boundedness == "compute"
        # The consistency that justifies function-level offload:
        assert all(r.intensity_consistency > 0.9 for r in reports.values())
