"""The vectorized Poisson arrival sampler is bit-compatible with the
scalar loop it replaced.

Every committed benchmark baseline (``BENCH_serving.json``,
``BENCH_faults.json``) embeds latency numbers derived from the exact
arrival offsets ``random.Random(seed)`` produced under the old
one-draw-per-job loop.  The numpy cumulative-sum sampler must reproduce
those offsets to the last bit — for the committed seeds and for any
other seed — or every committed p50/p99/availability number silently
stops being reproducible.  The retired loop survives as
``_poisson_arrivals_loop``, the regression oracle.
"""

import json
from pathlib import Path

import pytest

from repro.core.arrivals import _poisson_arrivals_loop, poisson_arrivals

REPO_ROOT = Path(__file__).resolve().parents[2]

#: First offsets of the committed arrival process (seed 0, rate 2.0) —
#: the stream both committed BENCH files were measured under, frozen as
#: literals so a drift in *either* implementation fails loudly.
COMMITTED_STREAM_PREFIX = (
    0.9303035555326117,
    1.6396181320184926,
    1.912474704789289,
    2.062295860896196,
    2.420273235779771,
    2.6798148288807297,
)


class TestBitCompatibilityWithLoop:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 13, 29])
    @pytest.mark.parametrize("rate", [2.0, 1.0, 3.5, 0.25])
    def test_matches_loop_exactly(self, seed, rate):
        n = 257
        assert poisson_arrivals(n, rate, seed=seed) == _poisson_arrivals_loop(
            n, rate, seed=seed
        )

    @pytest.mark.parametrize("seed", [-13, -1, 2**40 + 17, 2**70 + 3])
    def test_matches_loop_for_negative_and_huge_seeds(self, seed):
        """``random.Random`` seeds the Mersenne Twister from the seed's
        magnitude in 32-bit chunks; negative and >64-bit seeds exercise
        the chunking path."""
        assert poisson_arrivals(100, 2.0, seed=seed) == _poisson_arrivals_loop(
            100, 2.0, seed=seed
        )

    def test_committed_stream_prefix_is_frozen(self):
        offsets = poisson_arrivals(len(COMMITTED_STREAM_PREFIX), 2.0, seed=0)
        assert offsets == COMMITTED_STREAM_PREFIX

    def test_prefix_property(self):
        """Drawing more jobs extends the stream without disturbing the
        earlier offsets — the loop's one-draw-per-job contract."""
        short = poisson_arrivals(10, 2.0, seed=0)
        long = poisson_arrivals(1000, 2.0, seed=0)
        assert long[:10] == short

    def test_committed_bench_seeds_reproduce(self):
        """Every (seed, rate) pair recorded in the committed BENCH
        baselines re-derives bit-identically at full batch length."""
        pairs = set()
        for name in ("BENCH_serving.json", "BENCH_faults.json"):
            payload = json.loads((REPO_ROOT / name).read_text())
            for point in payload.get("points", ()):
                arrival = point.get("arrival") or {}
                if "seed" in arrival and "rate_jobs_per_second" in arrival:
                    pairs.add(
                        (arrival["seed"], arrival["rate_jobs_per_second"])
                    )
            sweep = payload.get("arrival_sweep") or {}
            for point in sweep.get("points", ()):
                if "rate_jobs_per_second" in point:
                    pairs.add(
                        (sweep.get("seed", 0), point["rate_jobs_per_second"])
                    )
        assert pairs  # the baselines do carry open-queue measurements
        for seed, rate in sorted(pairs):
            assert poisson_arrivals(
                1024, rate, seed=seed
            ) == _poisson_arrivals_loop(1024, rate, seed=seed)


class TestContract:
    def test_validation_unchanged(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 2.0)
        with pytest.raises(ValueError):
            poisson_arrivals(4, 0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(4, -1.0)

    def test_offsets_strictly_positive_and_increasing(self):
        offsets = poisson_arrivals(500, 5.0, seed=11)
        assert offsets[0] > 0
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_returns_plain_floats(self):
        """Downstream code hashes and pickles the offsets: they must be
        Python floats, not numpy scalars."""
        offsets = poisson_arrivals(3, 2.0, seed=0)
        assert isinstance(offsets, tuple)
        assert all(type(x) is float for x in offsets)
