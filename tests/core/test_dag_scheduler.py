"""The topological-DP scheduler vs the exhaustive oracle, and the target
registry (GPU as a third schedulable device)."""

import random

import pytest

from repro.core.framework import NdftFramework
from repro.core.pipeline import build_kpoint_pipeline, build_pipeline
from repro.core.scheduler import Placement, SchedulingPolicy
from repro.core.trace import build_timeline, validate_timeline
from repro.dft.workload import problem_size
from repro.errors import SchedulingError
from repro.hw.timing import PhaseTime

from tests.core.dag_helpers import diamond_pipeline, random_pipeline


@pytest.fixture(scope="module")
def gpu_framework():
    return NdftFramework(enable_gpu=True)


class TestDpMatchesOracle:
    """The acceptance property: the DP is exact, enumeration is the oracle."""

    def test_chain_matches_exhaustive(self, framework):
        pipeline = build_pipeline(problem_size(64))
        dp = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        oracle = framework.scheduler._exhaustive_best(pipeline)
        assert dp.predicted_total == pytest.approx(
            oracle.predicted_total, rel=1e-12
        )
        assert dp.assignments == oracle.assignments

    def test_diamond_matches_exhaustive(self, framework):
        pipeline = diamond_pipeline()
        dp = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        oracle = framework.scheduler._exhaustive_best(pipeline)
        assert dp.predicted_total == pytest.approx(
            oracle.predicted_total, rel=1e-12
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags_match_exhaustive(self, framework, seed):
        """Property-style sweep: random <= 8-stage DAGs, DP == oracle."""
        rng = random.Random(20260729 + seed)
        pipeline = random_pipeline(rng, n_stages=rng.randint(3, 8))
        dp = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        oracle = framework.scheduler._exhaustive_best(pipeline)
        assert dp.predicted_total == pytest.approx(
            oracle.predicted_total, rel=1e-12
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_cost_aware_dominates_other_policies(self, framework, seed):
        """COST_AWARE <= ALL_CPU, ALL_NDP and NAIVE on arbitrary DAGs."""
        rng = random.Random(31337 + seed)
        pipeline = random_pipeline(rng, n_stages=rng.randint(3, 8))
        best = framework.scheduler.schedule(
            pipeline, SchedulingPolicy.COST_AWARE
        ).predicted_total
        for policy in (
            SchedulingPolicy.ALL_CPU,
            SchedulingPolicy.ALL_NDP,
            SchedulingPolicy.NAIVE,
        ):
            other = framework.scheduler.schedule(pipeline, policy)
            assert best <= other.predicted_total * (1 + 1e-12)

    def test_kpoint_dag_matches_exhaustive(self, framework):
        pipeline = build_kpoint_pipeline(problem_size(64), n_kpoints=2)
        assert len(pipeline.stages) == 8
        dp = framework.scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        oracle = framework.scheduler._exhaustive_best(pipeline)
        assert dp.predicted_total == pytest.approx(
            oracle.predicted_total, rel=1e-12
        )


class TestGpuTarget:
    def test_registry_defaults_to_paper_targets(self, framework):
        assert framework.scheduler.targets == (Placement.CPU, Placement.NDP)

    def test_gpu_registered_as_third_target(self, gpu_framework):
        assert gpu_framework.scheduler.targets == (
            Placement.CPU,
            Placement.NDP,
            Placement.GPU,
        )

    def test_unregistered_target_rejected(self, framework):
        pipeline = build_pipeline(problem_size(64))
        with pytest.raises(SchedulingError, match="no machine registered"):
            framework.scheduler.evaluate(
                pipeline,
                {name: Placement.GPU for name in pipeline.stage_names},
            )

    def test_three_target_dp_matches_exhaustive(self, gpu_framework):
        """3^6 oracle vs the DP with the GPU in the registry."""
        pipeline = build_pipeline(problem_size(1024))
        dp = gpu_framework.scheduler.schedule(
            pipeline, SchedulingPolicy.COST_AWARE
        )
        oracle = gpu_framework.scheduler._exhaustive_best(pipeline)
        assert dp.predicted_total == pytest.approx(
            oracle.predicted_total, rel=1e-12
        )
        assert dp.assignments == oracle.assignments

    def test_cost_aware_mixes_device_kinds(self, gpu_framework):
        """A pipeline whose cost-aware placement uses >= 2 device kinds."""
        pipeline = build_pipeline(problem_size(1024))
        schedule = gpu_framework.scheduler.schedule(
            pipeline, SchedulingPolicy.COST_AWARE
        )
        assert len(schedule.placements_used) >= 2

    def test_extra_target_never_hurts(self, gpu_framework, framework):
        """Adding a target can only keep or lower the optimum."""
        for n_atoms in (64, 1024):
            pipeline = build_pipeline(problem_size(n_atoms))
            two = framework.scheduler.schedule(
                pipeline, SchedulingPolicy.COST_AWARE
            )
            three = gpu_framework.scheduler.schedule(
                pipeline, SchedulingPolicy.COST_AWARE
            )
            assert three.predicted_total <= two.predicted_total * (1 + 1e-12)

    def test_gpu_schedule_executes_end_to_end(self, gpu_framework):
        """A schedule that may include the GPU still runs through the DES
        (the executor builds device lanes from the assignment set)."""
        result = gpu_framework.run(n_atoms=1024)
        assert result.total_time > 0

    def test_gpu_boundaries_priced_on_pcie(self, gpu_framework):
        """CPU<->GPU crossings must pay the PCIe wire, NDP<->GPU the
        serialized host-link + PCIe path — not the CPU<->NDP link."""
        model = gpu_framework.cost_model
        nbytes = 1e9
        cpu_ndp = model.boundary_cost(nbytes, (Placement.CPU, Placement.NDP))
        cpu_gpu = model.boundary_cost(nbytes, (Placement.CPU, Placement.GPU))
        ndp_gpu = model.boundary_cost(nbytes, (Placement.NDP, Placement.GPU))
        assert cpu_gpu != cpu_ndp
        # PCIe (32 GB/s aggregate) is slower than the halved 64 GB/s CXL
        # link, and the staged NDP->GPU path pays both wires.
        assert cpu_gpu > cpu_ndp
        assert ndp_gpu > max(cpu_ndp, cpu_gpu)
        # order of the pair must not matter
        assert cpu_gpu == model.boundary_cost(
            nbytes, (Placement.GPU, Placement.CPU)
        )

    def test_multi_wire_timeline_validates(self, gpu_framework):
        """Two branches crossing onto different wires transfer
        concurrently; per-wire lanes keep validate_timeline happy."""
        pipeline = build_kpoint_pipeline(problem_size(64), n_kpoints=2)
        assignments = {
            "pseudopotential": Placement.CPU,
            "face_split[k0]": Placement.NDP,
            "fft[k0]": Placement.NDP,
            "face_split[k1]": Placement.GPU,
            "fft[k1]": Placement.GPU,
            "global_comm": Placement.NDP,
            "gemm": Placement.CPU,
            "syevd": Placement.CPU,
        }
        schedule = gpu_framework.scheduler.evaluate(pipeline, assignments)
        events = build_timeline(pipeline, schedule, gpu_framework.cost_model)
        validate_timeline(events)  # must not flag cross-wire concurrency
        link_lanes = {e.lane for e in events if e.lane.startswith("link")}
        assert {"link:cpu-ndp", "link:cpu-gpu"} <= link_lanes

    def test_register_target_swaps_machine(self, framework):
        """Plugging a dominant custom machine redirects every stage."""

        class InstantMachine:
            def execute(self, workload):
                return PhaseTime(
                    name=str(workload.name),
                    compute_time=1e-9,
                    memory_time=1e-9,
                )

        scheduler = NdftFramework().scheduler  # private copy, not the fixture
        scheduler.register_target(Placement.GPU, InstantMachine())
        pipeline = build_pipeline(problem_size(64))
        schedule = scheduler.schedule(pipeline, SchedulingPolicy.COST_AWARE)
        assert set(schedule.assignments.values()) == {Placement.GPU}
