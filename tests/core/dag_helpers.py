"""Shared helpers for the core test suite: synthetic stage DAGs.

The paper's pipelines come from :func:`repro.core.pipeline.build_pipeline`
and :func:`build_kpoint_pipeline`; these helpers construct arbitrary
small DAGs (diamonds, random graphs) so the DAG validator, the
topological-DP scheduler and the concurrent executor can be exercised on
shapes the paper never needed.
"""

from __future__ import annotations

import random

from repro.core.ir import function_from_workload
from repro.core.pipeline import Edge, Pipeline, Stage
from repro.dft.workload import problem_size
from repro.model import AccessPattern, KernelWorkload


def make_stage(
    name: str,
    flops: float,
    nbytes: float,
    pattern: AccessPattern = AccessPattern.SEQUENTIAL,
) -> Stage:
    """A synthetic stage with a given FLOP and traffic volume."""
    workload = KernelWorkload(
        name=name,
        flops=flops,
        bytes_read=nbytes * 0.6,
        bytes_written=nbytes * 0.4,
        access_pattern=pattern,
        parallel_tasks=64,
    )
    return Stage(
        name=name,
        workload=workload,
        function=function_from_workload(
            workload, live_in_bytes=nbytes / 2, live_out_bytes=nbytes / 2
        ),
    )


def diamond_pipeline(
    branch_flops: float = 2e12,
    branch_bytes: float = 4e10,
    edge_bytes: float = 1e6,
) -> Pipeline:
    """a -> (b, c) -> d with one compute-heavy and one traffic-heavy branch
    (so the cost-aware scheduler wants them on different devices) and
    near-free edges (so overlap gains dwarf boundary costs)."""
    stages = (
        make_stage("a", 1e10, 1e8),
        make_stage("b", branch_flops, branch_flops / 50, AccessPattern.BLOCKED),
        make_stage("c", branch_bytes / 10, branch_bytes),
        make_stage("d", 1e10, 1e8),
    )
    edges = (
        Edge("a", "b", edge_bytes),
        Edge("a", "c", edge_bytes),
        Edge("b", "d", edge_bytes),
        Edge("c", "d", edge_bytes),
    )
    return Pipeline(problem=problem_size(64), stages=stages, edges=edges)


def random_pipeline(rng: random.Random, n_stages: int) -> Pipeline:
    """A random connected DAG over ``n_stages`` synthetic stages: every
    stage past the first draws 1-3 predecessors from earlier stages."""
    patterns = list(AccessPattern)
    stages = tuple(
        make_stage(
            f"s{i}",
            flops=rng.uniform(1e10, 5e12),
            nbytes=rng.uniform(1e9, 2e11),
            pattern=rng.choice(patterns),
        )
        for i in range(n_stages)
    )
    edges: list[Edge] = []
    for j in range(1, n_stages):
        for i in rng.sample(range(j), k=rng.randint(1, min(j, 3))):
            edges.append(
                Edge(src=f"s{i}", dst=f"s{j}", nbytes=rng.uniform(1e6, 5e9))
            )
    return Pipeline(
        problem=problem_size(64), stages=stages, edges=tuple(edges)
    )
