"""The serving-benchmark trend gate (CI bench-smoke comparison)."""

import json

import pytest

from repro.experiments.bench_compare import (
    compare_serving_reports,
    format_comparison,
    hosts_comparable,
    main,
)


def _report(points, metadata=None, fast_path=True, speedups=None, arrivals=None):
    out = {
        "benchmark": "scale_serving",
        "fast_path": fast_path,
        "points": [
            {"batch_size": size, "jobs_per_second_cached": jps}
            for size, jps in points
        ],
    }
    if speedups:
        for point, speedup in zip(out["points"], speedups):
            point["wall_speedup"] = speedup
    if arrivals:
        for point, arrival in zip(out["points"], arrivals):
            if arrival is not None:
                p99, rate, seed = arrival
                point["arrival"] = {
                    "p99_latency_seconds": p99,
                    "rate_jobs_per_second": rate,
                    "seed": seed,
                }
    if metadata:
        out["metadata"] = metadata
    return out


class TestCompareServingReports:
    def test_within_tolerance_passes(self):
        committed = _report([(16, 1000.0), (64, 2000.0)])
        fresh = _report([(16, 800.0), (64, 1500.0)])  # -20%, -25%
        assert compare_serving_reports(committed, fresh) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = _report([(16, 1000.0), (64, 2000.0)])
        fresh = _report([(16, 999.0), (64, 1000.0)])  # -50% at 64
        failures = compare_serving_reports(committed, fresh)
        assert len(failures) == 1
        assert "batch 64" in failures[0]

    def test_only_shared_batch_sizes_compared(self):
        committed = _report([(16, 1000.0), (1024, 9000.0)])
        fresh = _report([(16, 950.0), (32, 1.0)])  # 32/1024 unshared
        assert compare_serving_reports(committed, fresh) == []

    def test_no_shared_sizes_is_a_failure(self):
        failures = compare_serving_reports(
            _report([(16, 1000.0)]), _report([(32, 1000.0)])
        )
        assert failures and "no shared batch sizes" in failures[0]

    def test_improvements_always_pass(self):
        committed = _report([(16, 1000.0)])
        fresh = _report([(16, 5000.0)])
        assert compare_serving_reports(committed, fresh) == []

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_serving_reports(_report([]), _report([]), max_regression=1.0)

    def test_absent_new_fields_are_not_regressions(self):
        """A committed baseline written before the per-backend fields
        existed (no ``backend_jobs``/``backend_wall_seconds``, no
        ``wall_speedup``) must compare cleanly against a fresh report
        that has them all — absent is advisory, never a failure."""
        committed = _report([(16, 1000.0), (64, 2000.0)])
        fresh = _report(
            [(16, 900.0), (64, 1900.0)], speedups=[12.0, 20.0]
        )
        for point in fresh["points"]:
            point["backend_jobs"] = {"vector_replay": point["batch_size"]}
            point["backend_wall_seconds"] = {"vector_replay": 0.01}
        assert compare_serving_reports(committed, fresh) == []
        # Symmetric: trending a new-format committed file against a
        # fresh one whose large points skipped the uncached baseline
        # (wall_speedup null past UNCACHED_COMPARE_MAX) skips that gate.
        committed = _report(
            [(16384, 30000.0), (65536, 50000.0)], speedups=[8.0, 9.0]
        )
        fresh = _report([(16384, 29000.0), (65536, 48000.0)])
        for point in fresh["points"]:
            point["wall_speedup"] = None
            point["backend_wall_seconds"] = None
        assert compare_serving_reports(committed, fresh) == []

    def test_baseline_only_files_are_refused(self):
        """--no-cache output holds baseline numbers under the cached
        columns; trending against it would hide real regressions."""
        good = _report([(16, 1000.0)])
        baseline = _report([(16, 150.0)], fast_path=False)
        for committed, fresh in ((baseline, good), (good, baseline)):
            failures = compare_serving_reports(committed, fresh)
            assert failures and "--no-cache" in failures[0]

    def test_hosts_comparable(self):
        same = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        assert hosts_comparable(_report([], metadata=same), _report([], metadata=same))
        assert not hosts_comparable(
            _report([], metadata=same),
            _report([], metadata=dict(same, cpu_count=64)),
        )
        assert not hosts_comparable(
            _report([], metadata=same),
            _report([], metadata=dict(same, python="3.11.7")),
        )
        # Patch releases and kernel-build churn do not break comparability.
        assert hosts_comparable(
            _report([], metadata=dict(same, platform="Linux-6.1-x")),
            _report([], metadata=dict(same, python="3.12.9", platform="Linux-6.8-y")),
        )
        # Missing metadata (older files) stays conservative: comparable.
        assert hosts_comparable(_report([]), _report([], metadata=same))

    def test_speedup_regression_gates_across_hosts(self):
        """wall_speedup is host-relative, so it fails the gate even when
        the absolute-throughput comparison is suppressed by a host
        mismatch."""
        meta_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        meta_b = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        committed = _report([(16, 9000.0)], metadata=meta_a, speedups=[8.0])
        fresh = _report([(16, 900.0)], metadata=meta_b, speedups=[2.0])
        failures = compare_serving_reports(committed, fresh)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_absolute_throughput_not_gated_across_hosts(self):
        meta_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        meta_b = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        committed = _report([(16, 9000.0)], metadata=meta_a, speedups=[8.0])
        fresh = _report([(16, 900.0)], metadata=meta_b, speedups=[7.9])
        assert compare_serving_reports(committed, fresh) == []

    def test_mismatched_forced_backends_are_refused(self):
        """A --backend-forced sweep is a different experiment (an
        engine-forced run is legitimately several times slower), so it
        cannot be trended against an auto-selected file."""
        auto = _report([(16, 1000.0)])
        forced = dict(_report([(16, 300.0)]), backend="engine")
        for committed, fresh in ((auto, forced), (forced, auto)):
            failures = compare_serving_reports(committed, fresh)
            assert failures and "backend" in failures[0]
        # Two files forced to the same backend trend normally.
        also_forced = dict(_report([(16, 290.0)]), backend="engine")
        assert compare_serving_reports(forced, also_forced) == []

    def test_mismatched_admission_policies_are_refused(self):
        """Shed rates and post-shed latencies from one admission policy
        are a different experiment from another's (or from no policy):
        refused like mismatched forced backends."""
        off = _report([(16, 1000.0)])
        slo = dict(
            _report([(16, 1000.0)]),
            admission={"slo_p99": 2.0, "max_queue_depth": None, "mode": "shed"},
        )
        for committed, fresh in ((off, slo), (slo, off)):
            failures = compare_serving_reports(committed, fresh)
            assert failures and "admission" in failures[0]
        # Two files under the same policy trend normally.
        same = dict(
            _report([(16, 990.0)]),
            admission={"slo_p99": 2.0, "max_queue_depth": None, "mode": "shed"},
        )
        assert compare_serving_reports(slo, same) == []
        # A different SLO is still a mismatch.
        other = dict(
            _report([(16, 990.0)]),
            admission={"slo_p99": 9.0, "max_queue_depth": None, "mode": "shed"},
        )
        assert compare_serving_reports(slo, other)

    def test_mismatched_fault_plans_are_refused(self):
        """Availability, goodput and retry-inflated latencies under one
        fault plan cannot be trended against a healthy run (or a run
        under a different plan) — refused like mismatched admission.
        A file predating the field (no "faults" key) reads as off."""

        def _faulted(jps, digest):
            return dict(
                _report([(16, jps)]),
                faults={
                    "plan": {"seed": 7, "digest": digest},
                    "retry": {"max_attempts": 3},
                },
            )

        healthy = _report([(16, 1000.0)])
        faulted = _faulted(500.0, "abc123")
        for committed, fresh in ((healthy, faulted), (faulted, healthy)):
            failures = compare_serving_reports(committed, fresh)
            assert failures and "fault plans" in failures[0]
            assert "cannot be trended" in failures[0]
        # The refusal names the plans compactly by digest.
        assert "plan abc123" in compare_serving_reports(healthy, faulted)[0]
        # Two files under the identical plan trend normally; a
        # different plan is still a mismatch.
        assert compare_serving_reports(faulted, _faulted(450.0, "abc123")) == []
        assert compare_serving_reports(faulted, _faulted(500.0, "def456"))
        # Legacy files without the key trend against explicit faults-off.
        explicit_off = dict(_report([(16, 990.0)]), faults=None)
        assert compare_serving_reports(healthy, explicit_off) == []

    def test_mismatched_replica_counts_are_refused(self):
        """A fleet aggregate (--replicas N) is legitimately a multiple
        of the single-process throughput: trending across different
        fleet sizes is refused like mismatched forced backends.  A file
        predating the field (no "replicas" key) reads as one replica."""
        solo = _report([(16, 1000.0)])
        fleet = dict(_report([(16, 3600.0)]), replicas=4)
        for committed, fresh in ((solo, fleet), (fleet, solo)):
            failures = compare_serving_reports(committed, fresh)
            assert failures and "fleet sizes" in failures[0]
            assert "cannot be trended" in failures[0]
        assert "1 vs 4 replicas" in compare_serving_reports(solo, fleet)[0]
        # Two files at the same fleet size trend normally — including
        # the ordinary throughput gate over the fleet aggregate.
        same_fleet = dict(_report([(16, 3500.0)]), replicas=4)
        assert compare_serving_reports(fleet, same_fleet) == []
        regressed = dict(_report([(16, 1000.0)]), replicas=4)
        failures = compare_serving_reports(fleet, regressed)
        assert len(failures) == 1 and "throughput" in failures[0]
        # A different fleet size is still a mismatch.
        other_fleet = dict(_report([(16, 1800.0)]), replicas=2)
        assert compare_serving_reports(fleet, other_fleet)

    def test_explicit_single_replica_matches_legacy_files(self):
        """replicas: 1 (a fresh single-process run) trends against a
        legacy file without the key."""
        legacy = _report([(16, 1000.0)])
        explicit = dict(_report([(16, 990.0)]), replicas=1)
        assert compare_serving_reports(legacy, explicit) == []
        assert compare_serving_reports(explicit, legacy) == []

    @staticmethod
    def _resilient(jps, availability, goodput, rate=2.0, seed=0, digest="abc123"):
        report = dict(
            _report([(16, jps)]),
            faults={
                "plan": {"seed": 7, "digest": digest},
                "retry": {"max_attempts": 3, "checkpoint": True},
            },
        )
        report["points"][0]["arrival"] = {
            "rate_jobs_per_second": rate,
            "seed": seed,
            "resilience": {"availability": availability, "goodput": goodput},
        }
        return report

    def test_availability_and_goodput_gated_at_matching_descriptors(self):
        """Under *matching* fault descriptors the resilience numbers are
        trended, not refused: a >tolerance drop in availability or
        goodput fails CI."""
        committed = self._resilient(1000.0, 1.0, 1.8)
        within = self._resilient(990.0, 0.9, 1.5)
        assert compare_serving_reports(committed, within) == []
        worse_avail = self._resilient(990.0, 0.5, 1.8)
        failures = compare_serving_reports(committed, worse_avail)
        assert len(failures) == 1
        assert "availability" in failures[0]
        worse_goodput = self._resilient(990.0, 1.0, 0.9)
        failures = compare_serving_reports(committed, worse_goodput)
        assert len(failures) == 1
        assert "goodput" in failures[0]

    def test_resilience_not_compared_across_rates_or_hosts(self):
        """Same comparability rules as throughput/p99: a different
        arrival process skips the gate, and so does a host-class
        mismatch."""
        committed = self._resilient(1000.0, 1.0, 1.8)
        other_rate = self._resilient(1000.0, 0.1, 0.1, rate=9.0)
        assert compare_serving_reports(committed, other_rate) == []
        meta_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        meta_b = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        cross_host = dict(self._resilient(1000.0, 0.1, 0.1), metadata=meta_b)
        committed_meta = dict(committed, metadata=meta_a)
        assert compare_serving_reports(committed_meta, cross_host) == []

    def test_resilience_gate_skips_missing_blocks(self):
        committed = self._resilient(1000.0, 1.0, 1.8)
        missing = self._resilient(1000.0, 1.0, 1.8)
        del missing["points"][0]["arrival"]["resilience"]
        assert compare_serving_reports(committed, missing) == []

    def test_format_shows_resilience_trend(self):
        committed = self._resilient(1000.0, 1.0, 1.8)
        fresh = self._resilient(1000.0, 0.5, 0.9)
        failures = compare_serving_reports(committed, fresh)
        text = format_comparison(committed, fresh, failures)
        assert "avail 100% -> 50%" in text
        assert "goodput 1.80 -> 0.90" in text

    @staticmethod
    def _sweep(knee_lane, seed=0, batch_size=256, rates=(1.0, 2.0), knee_rate=None):
        return {
            "seed": seed,
            "batch_size": batch_size,
            "knee_rate_jobs_per_second": (
                rates[-1] if knee_rate is None else knee_rate
            ),
            "knee_dominant_lane": knee_lane,
            "points": [{"rate_jobs_per_second": rate} for rate in rates],
        }

    def test_knee_dominant_lane_change_fails(self):
        committed = dict(_report([(16, 1000.0)]), arrival_sweep=self._sweep("ndp"))
        fresh = dict(
            _report([(16, 1000.0)]), arrival_sweep=self._sweep("link:cpu-ndp")
        )
        failures = compare_serving_reports(committed, fresh)
        assert len(failures) == 1
        assert "dominant lane" in failures[0]
        assert "'ndp'" in failures[0] and "'link:cpu-ndp'" in failures[0]

    def test_knee_lane_gate_requires_matching_sweeps(self):
        """A different seed, batch size or rate grid is a different
        experiment: the lane gate skips rather than fails."""
        committed = dict(_report([(16, 1000.0)]), arrival_sweep=self._sweep("ndp"))
        for other in (
            self._sweep("cpu", seed=7),
            self._sweep("cpu", batch_size=64),
            self._sweep("cpu", rates=(1.0, 4.0)),
            # A knee at a different rate is a different operating point:
            # its dominant lane is legitimately allowed to differ.
            self._sweep("cpu", knee_rate=1.0),
        ):
            fresh = dict(_report([(16, 1000.0)]), arrival_sweep=other)
            assert compare_serving_reports(committed, fresh) == []

    def test_knee_lane_gate_skips_missing_knees(self):
        """No sweep, or a sweep that never kneed (lane None), cannot be
        gated — older files and unsaturated sweeps still trend."""
        with_knee = dict(_report([(16, 1000.0)]), arrival_sweep=self._sweep("ndp"))
        no_sweep = _report([(16, 1000.0)])
        no_knee = dict(_report([(16, 1000.0)]), arrival_sweep=self._sweep(None))
        assert compare_serving_reports(with_knee, no_sweep) == []
        assert compare_serving_reports(with_knee, no_knee) == []
        assert compare_serving_reports(no_knee, with_knee) == []

    def test_matching_knee_lane_passes(self):
        committed = dict(_report([(16, 1000.0)]), arrival_sweep=self._sweep("ndp"))
        fresh = dict(_report([(16, 990.0)]), arrival_sweep=self._sweep("ndp"))
        assert compare_serving_reports(committed, fresh) == []

    def test_knee_lane_gates_across_host_classes(self):
        """Lane identity is virtual-time accounting: a host mismatch
        does not suppress it (unlike absolute throughput)."""
        meta_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        meta_b = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        committed = dict(
            _report([(16, 1000.0)], metadata=meta_a),
            arrival_sweep=self._sweep("ndp"),
        )
        fresh = dict(
            _report([(16, 1000.0)], metadata=meta_b),
            arrival_sweep=self._sweep("cpu"),
        )
        failures = compare_serving_reports(committed, fresh)
        assert failures and "dominant lane" in failures[0]

    def test_p99_regression_beyond_tolerance_fails(self):
        committed = _report([(16, 1000.0)], arrivals=[(1.0, 2.0, 0)])
        fresh = _report([(16, 1000.0)], arrivals=[(1.5, 2.0, 0)])  # +50%
        failures = compare_serving_reports(committed, fresh)
        assert len(failures) == 1
        assert "p99" in failures[0]

    def test_p99_within_tolerance_and_improvements_pass(self):
        committed = _report([(16, 1000.0)], arrivals=[(1.0, 2.0, 0)])
        within = _report([(16, 1000.0)], arrivals=[(1.2, 2.0, 0)])
        better = _report([(16, 1000.0)], arrivals=[(0.5, 2.0, 0)])
        assert compare_serving_reports(committed, within) == []
        assert compare_serving_reports(committed, better) == []

    def test_p99_not_compared_across_rates_or_seeds(self):
        """A different offered load (or arrival seed) is a different
        experiment: the latency numbers are incomparable, so the gate
        skips them instead of failing."""
        committed = _report([(16, 1000.0)], arrivals=[(1.0, 2.0, 0)])
        other_rate = _report([(16, 1000.0)], arrivals=[(9.0, 4.0, 0)])
        other_seed = _report([(16, 1000.0)], arrivals=[(9.0, 2.0, 7)])
        assert compare_serving_reports(committed, other_rate) == []
        assert compare_serving_reports(committed, other_seed) == []

    def test_p99_not_gated_across_host_classes(self):
        """Same refusal rules as absolute throughput: a host-class
        mismatch suppresses the p99 gate (advisory context only)."""
        meta_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        meta_b = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 4}
        committed = _report(
            [(16, 1000.0)], metadata=meta_a, arrivals=[(1.0, 2.0, 0)]
        )
        fresh = _report(
            [(16, 1000.0)], metadata=meta_b, arrivals=[(5.0, 2.0, 0)]
        )
        assert compare_serving_reports(committed, fresh) == []
        same_host = _report(
            [(16, 1000.0)], metadata=meta_a, arrivals=[(5.0, 2.0, 0)]
        )
        assert compare_serving_reports(committed, same_host)

    def test_missing_arrival_blocks_skip_the_p99_gate(self):
        committed = _report([(16, 1000.0)], arrivals=[(1.0, 2.0, 0)])
        fresh = _report([(16, 1000.0)])  # no open-queue block (older file)
        assert compare_serving_reports(committed, fresh) == []
        assert compare_serving_reports(fresh, committed) == []

    def test_format_shows_p99_trend(self):
        committed = _report([(16, 1000.0)], arrivals=[(1.0, 2.0, 0)])
        fresh = _report([(16, 1000.0)], arrivals=[(1.5, 2.0, 0)])
        failures = compare_serving_reports(committed, fresh)
        text = format_comparison(committed, fresh, failures)
        assert "p99 1.0000 -> 1.5000 s" in text
        assert "FAIL" in text

    def test_format_mentions_metadata_and_verdict(self):
        committed = _report([(16, 1000.0)], metadata={"python": "3.11.7"})
        fresh = _report([(16, 100.0)])
        failures = compare_serving_reports(committed, fresh)
        text = format_comparison(committed, fresh, failures)
        assert "python=3.11.7" in text
        assert "FAIL" in text
        ok_text = format_comparison(committed, committed, [])
        assert "OK" in ok_text


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(json.dumps(_report([(16, 1000.0)])))
        fresh.write_text(json.dumps(_report([(16, 990.0)])))
        assert main([str(committed), str(fresh)]) == 0
        fresh.write_text(json.dumps(_report([(16, 10.0)])))
        assert main([str(committed), str(fresh)]) == 1
        capsys.readouterr()

    def test_custom_tolerance(self, tmp_path, capsys):
        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(json.dumps(_report([(16, 1000.0)])))
        fresh.write_text(json.dumps(_report([(16, 550.0)])))
        assert main([str(committed), str(fresh)]) == 1
        assert (
            main([str(committed), str(fresh), "--max-regression", "0.5"]) == 0
        )
        capsys.readouterr()

    def test_host_mismatch_suppresses_only_absolute_throughput(
        self, tmp_path, capsys
    ):
        """A throughput drop measured on a *different* host class is not
        regression signal (exit 0, context note); the same files on one
        host fail.  Structural refusals fail regardless of hosts."""
        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        meta_a = {"python": "3.12.1", "machine": "x86_64", "cpu_count": 64}
        meta_b = {"python": "3.11.7", "machine": "aarch64", "cpu_count": 2}
        committed.write_text(json.dumps(_report([(16, 9000.0)], metadata=meta_a)))
        fresh.write_text(json.dumps(_report([(16, 900.0)], metadata=meta_b)))
        assert main([str(committed), str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "hosts differ" in out
        # Same host: the identical regression fails.
        fresh.write_text(json.dumps(_report([(16, 900.0)], metadata=meta_a)))
        assert main([str(committed), str(fresh)]) == 1
        # A baseline-only committed file fails even across hosts.
        committed.write_text(
            json.dumps(
                _report([(16, 900.0)], metadata=meta_a, fast_path=False)
            )
        )
        fresh.write_text(json.dumps(_report([(16, 900.0)], metadata=meta_b)))
        assert main([str(committed), str(fresh)]) == 1
        capsys.readouterr()
