"""Reproduction assertions: every table/figure lands in the paper's band.

These are the repository's acceptance tests: each checks the *shape* the
paper reports (who wins, by roughly what factor, where classifications
flip), with tolerances recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.ablations import (
    run_granularity_ablation,
    run_policy_ablation,
    run_shared_memory_ablation,
)
from repro.experiments.batch_throughput import format_batch, run_batch_study
from repro.experiments.discussion import run_discussion
from repro.experiments.fig4_roofline import format_roofline, run_roofline_study
from repro.experiments.fig7_breakdown import (
    breakdown_comparisons,
    format_breakdown,
    run_breakdown,
)
from repro.experiments.fig8_scalability import (
    format_scalability,
    run_scalability,
)
from repro.experiments.report import Comparison, format_table
from repro.experiments.table1_footprint import (
    format_table1,
    run_table1,
    table1_comparisons,
)
from repro.model import PhaseName


@pytest.fixture(scope="module")
def roofline_study():
    return run_roofline_study()


@pytest.fixture(scope="module")
def small_breakdown(framework):
    return run_breakdown(64, framework)


@pytest.fixture(scope="module")
def large_breakdown(framework):
    return run_breakdown(1024, framework)


@pytest.fixture(scope="module")
def scalability(framework):
    return run_scalability(framework=framework)


class TestFig4:
    def test_observation_1_memory_bound_majority(self, roofline_study):
        assert roofline_study.observation_memory_bound_majority()

    def test_observation_2_kernel_split(self, roofline_study):
        assert roofline_study.observation_kernel_split()

    def test_observation_3_size_dependence(self, roofline_study):
        assert roofline_study.observation_size_dependence()

    def test_points_within_roofline(self, roofline_study):
        for point in roofline_study.points.values():
            assert point.attained_flops <= point.attainable_flops * 1.01

    def test_format_has_all_rows(self, roofline_study):
        text = format_roofline(roofline_study)
        assert text.count("Si_64") == 4 and text.count("Si_1024") == 4


class TestTable1:
    def test_all_cells_match_paper(self):
        for comparison in table1_comparisons():
            assert comparison.ratio == pytest.approx(1.0, abs=0.01), comparison.metric

    def test_format(self):
        assert "NDP in Large system" in format_table1()


class TestFig7Small:
    def test_speedup_vs_cpu_band(self, small_breakdown):
        assert 1.9 * 0.7 < small_breakdown.speedup_vs_cpu < 1.9 * 1.5

    def test_speedup_vs_gpu_band(self, small_breakdown):
        assert 1.6 * 0.6 < small_breakdown.speedup_vs_gpu < 1.6 * 1.4

    def test_face_split_speedup_band(self, small_breakdown):
        measured = small_breakdown.kernel_speedup_vs_cpu(PhaseName.FACE_SPLIT)
        assert 1.99 * 0.7 < measured < 1.99 * 1.4

    def test_gpu_gemm_wins_small(self, small_breakdown):
        assert small_breakdown.gpu_gemm_advantage_percent() > 0


class TestFig7Large:
    def test_speedup_vs_cpu_band(self, large_breakdown):
        assert 5.2 * 0.8 < large_breakdown.speedup_vs_cpu < 5.2 * 1.25

    def test_speedup_vs_gpu_band(self, large_breakdown):
        assert 2.5 * 0.7 < large_breakdown.speedup_vs_gpu < 2.5 * 1.3

    def test_fft_speedup_band(self, large_breakdown):
        measured = large_breakdown.kernel_speedup_vs_cpu(PhaseName.FFT)
        assert 11.2 * 0.8 < measured < 11.2 * 1.2

    def test_gpu_gemm_wins_large_but_modestly(self, large_breakdown):
        advantage = large_breakdown.gpu_gemm_advantage_percent()
        assert 5.0 < advantage < 60.0  # paper: 22.2 %

    def test_memory_kernels_beat_gpu(self, large_breakdown):
        assert large_breakdown.memory_kernel_speedup_vs_gpu() > 2.0

    def test_format(self, large_breakdown):
        text = format_breakdown(large_breakdown)
        assert "TOTAL" in text and "scheduling" in text

    def test_comparisons_cover_quoted_numbers(self, large_breakdown):
        metrics = {c.metric for c in breakdown_comparisons(large_breakdown)}
        assert any("FFT" in m for m in metrics)


class TestFig8:
    def test_speedup_grows_with_size(self, scalability):
        assert scalability.is_monotone_from(start=32)

    def test_small_end_modest(self, scalability):
        assert scalability.ndft_speedup[16] < 2.0

    def test_large_end_in_band(self, scalability):
        assert 5.33 * 0.85 < scalability.ndft_speedup[2048] < 5.33 * 1.15

    def test_gpu_curve_flat_around_2x(self, scalability):
        large_values = [
            scalability.gpu_speedup[n] for n in (256, 1024, 2048)
        ]
        assert all(1.5 < v < 3.5 for v in large_values)

    def test_ndft_beats_gpu_at_scale(self, scalability):
        for n in (128, 256, 1024, 2048):
            assert scalability.ndft_speedup[n] > scalability.gpu_speedup[n]

    def test_format(self, scalability):
        assert "Si_2048" in format_scalability(scalability)


class TestDiscussion:
    @pytest.fixture(scope="class")
    def numbers(self, framework):
        return run_discussion(framework)

    def test_scheduling_overhead_bands(self, numbers):
        assert 2.0 < numbers.sched_overhead_small_pct < 8.0   # paper 3.8
        assert 2.0 < numbers.sched_overhead_large_pct < 8.0   # paper 4.9

    def test_footprint_numbers_exact(self, numbers):
        assert numbers.footprint_reduction_pct == pytest.approx(57.8, abs=0.3)
        assert numbers.footprint_vs_cpu_ratio == pytest.approx(1.08, abs=0.01)

    def test_comm_sync_small(self, numbers):
        assert 0.5 < numbers.global_comm_delta_pct < 8.0      # paper 3.2

    def test_comparisons_render(self, numbers):
        text = format_table("discussion", numbers.comparisons())
        assert "scheduling overhead" in text


class TestAblations:
    def test_granularity_ordering(self, framework):
        overheads = run_granularity_ablation(64, framework)
        assert overheads["function"] < overheads["basic_block"]
        assert overheads["basic_block"] < overheads["instruction"]

    def test_policy_cost_aware_wins(self, framework):
        for n in (64, 1024):
            assert run_policy_ablation(n, framework).cost_aware_wins

    def test_shared_memory_functional_ablation(self):
        result = run_shared_memory_ablation()
        assert result.memory_reduction_percent > 50.0
        assert result.filter_effective
        assert result.inter_stack_bytes_first_pass > 0


class TestBatchStudy:
    def test_mixed_batch_beats_serial(self, framework):
        study = run_batch_study((64, 512), framework)
        assert study.makespan < study.serial_time
        assert study.batching_speedup > 1.0

    def test_format(self, framework):
        study = run_batch_study((64, 64), framework)
        text = format_batch(study)
        assert "Si_64" in text and "makespan" in text
        # one header, one column row, one row per job, serial + batch rows
        assert len(text.splitlines()) == 2 + 2 + 2


class TestReport:
    def test_comparison_ratio(self):
        c = Comparison("m", paper=2.0, measured=1.0)
        assert c.ratio == 0.5

    def test_comparison_without_paper_value(self):
        c = Comparison("m", paper=None, measured=1.0)
        assert c.ratio is None
        assert "(figure)" in c.row()
