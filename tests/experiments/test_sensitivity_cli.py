"""Sensitivity sweeps and the CLI front end."""

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.sensitivity import (
    format_sweep,
    sweep_host_link_bandwidth,
    sweep_mesh_link_bandwidth,
    sweep_stack_count,
    sweep_units_per_stack,
)


class TestMeshSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_mesh_link_bandwidth(256, bandwidths=(12e9, 24e9, 96e9))

    def test_speedup_monotone_in_link_bandwidth(self, points):
        """Faster mesh links can only help: Global Comm is mesh-limited."""
        speedups = [p.speedup_vs_cpu for p in points]
        assert speedups == sorted(speedups)

    def test_diminishing_returns(self, points):
        """Doubling links from the Table III point buys less than the
        doubling into it (comm stops being the bottleneck)."""
        gain_into = points[1].speedup_vs_cpu - points[0].speedup_vs_cpu
        gain_beyond = points[2].speedup_vs_cpu - points[1].speedup_vs_cpu
        assert gain_into > 0
        assert gain_beyond < gain_into * 2  # saturating, not superlinear

    def test_format(self, points):
        text = format_sweep("mesh sweep", points)
        assert "speedup" in text and len(text.splitlines()) == 5


class TestOtherSweeps:
    def test_stack_count_scaling(self):
        points = sweep_stack_count(256, mesh_sides=(2, 4))
        assert points[1].speedup_vs_cpu > points[0].speedup_vs_cpu

    def test_host_link_reduces_overhead(self):
        points = sweep_host_link_bandwidth(256, bandwidths=(32e9, 256e9))
        assert (
            points[1].scheduling_overhead_pct
            <= points[0].scheduling_overhead_pct
        )

    def test_units_sweep_runs_and_keeps_spm_budget(self):
        points = sweep_units_per_stack(64, unit_counts=(4, 8))
        assert all(p.speedup_vs_cpu > 0 for p in points)

    def test_validation(self):
        with pytest.raises(ConfigError):
            sweep_mesh_link_bandwidth(64, bandwidths=())
        with pytest.raises(ConfigError):
            sweep_stack_count(64, mesh_sides=(0,))


class TestArrivalSweep:
    def test_knee_detection(self):
        from repro.experiments.scale_serving import (
            ArrivalSweepPoint,
            find_saturation_knee,
        )

        def point(rate, p99):
            return ArrivalSweepPoint(
                rate=rate,
                wall_seconds=0.0,
                makespan=0.0,
                p50_latency=p99 / 2,
                p99_latency=p99,
                mean_queueing_delay=0.0,
            )

        flat = [point(1.0, 1.0), point(2.0, 1.1), point(3.0, 1.3)]
        assert find_saturation_knee(flat) is None
        bent = flat + [point(4.0, 5.0), point(5.0, 40.0)]
        assert find_saturation_knee(bent) == 4.0
        # Order-insensitive: the baseline is the lowest rate.
        assert find_saturation_knee(list(reversed(bent))) == 4.0
        assert find_saturation_knee([]) is None

    def test_zero_baseline_does_not_knee_everything(self):
        """Regression: a 0.0 p99 at the lowest rate (degenerate sweep)
        made ``factor * baseline == 0``, so *every* later point with any
        latency at all "kneed".  The baseline must instead advance to
        the first positive p99."""
        from repro.experiments.scale_serving import (
            ArrivalSweepPoint,
            find_saturation_knee,
        )

        def point(rate, p99):
            return ArrivalSweepPoint(
                rate=rate,
                wall_seconds=0.0,
                makespan=0.0,
                p50_latency=p99 / 2,
                p99_latency=p99,
                mean_queueing_delay=0.0,
            )

        # Flat-after-zero: no knee (1.1 < 2x the 1.0 baseline).
        flat = [point(1.0, 0.0), point(2.0, 1.0), point(3.0, 1.1)]
        assert find_saturation_knee(flat) is None
        # A real blow-up past the positive baseline still knees.
        bent = [point(1.0, 0.0), point(2.0, 1.0), point(3.0, 2.5)]
        assert find_saturation_knee(bent) == 3.0
        # All-zero sweep: nothing to compare against, no knee.
        zeros = [point(1.0, 0.0), point(2.0, 0.0)]
        assert find_saturation_knee(zeros) is None

    def test_sweep_points_record_lane_utilization_and_shed(self):
        """Every sweep point carries the per-lane utilization (and its
        dominant lane), plus the admission outcome — 0.0 shed when
        admission is off."""
        from repro.experiments.scale_serving import run_arrival_sweep

        sweep = run_arrival_sweep(rates=(1.0, 30.0), batch_size=8, repeats=1)
        for point in sweep.points:
            assert set(point.lane_utilization) == {
                "cpu",
                "ndp",
                "link:cpu-ndp",
            }
            assert point.shed_rate == 0.0
            assert point.admitted == 8 and point.shed == 0
            assert point.dominant_lane in point.lane_utilization
        low, high = sweep.points
        assert (
            high.lane_utilization[high.dominant_lane]
            > low.lane_utilization[low.dominant_lane]
        )
        assert sweep.knee_rate == 30.0
        assert sweep.knee_dominant_lane == high.dominant_lane

    def test_sweep_with_admission_sheds_and_caps_p99(self):
        """Admission in the sweep: past the knee the shed rate is
        positive and the post-shed p99 respects the SLO."""
        from repro.core.arrivals import AdmissionPolicy
        from repro.experiments.scale_serving import run_arrival_sweep

        slo = 2.0
        sweep = run_arrival_sweep(
            rates=(30.0,),
            batch_size=16,
            repeats=1,
            admission=AdmissionPolicy(slo_p99=slo),
        )
        (point,) = sweep.points
        assert point.shed > 0
        assert point.shed_rate > 0.0
        assert point.admitted + point.shed == 16
        assert point.p99_latency <= slo

    def test_sweep_finds_the_knee_past_capacity(self):
        """Offered load far beyond the mix's simulated capacity
        (~3.8 jobs/s) must blow up p99 latency; a low rate must not."""
        from repro.experiments.scale_serving import run_arrival_sweep

        sweep = run_arrival_sweep(
            rates=(1.0, 50.0), batch_size=16, repeats=1
        )
        low, high = sweep.points
        assert low.rate == 1.0 and high.rate == 50.0
        assert high.p99_latency > low.p99_latency
        assert sweep.knee_rate == 50.0

    def test_sweep_validation(self):
        from repro.experiments.scale_serving import run_arrival_sweep

        with pytest.raises(ValueError):
            run_arrival_sweep(rates=())
        with pytest.raises(ValueError):
            run_arrival_sweep(rates=(1.0, -2.0))


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NDP in Large system" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "ridge point" in capsys.readouterr().out

    def test_fig7_with_atoms(self, capsys):
        assert main(["fig7", "--atoms", "64"]) == 0
        out = capsys.readouterr().out
        assert "Si_64" in out and "TOTAL" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "Si_2048" in capsys.readouterr().out

    def test_discussion(self, capsys):
        assert main(["discussion"]) == 0
        assert "scheduling overhead" in capsys.readouterr().out

    def test_ablations(self, capsys):
        assert main(["ablations", "--atoms", "64"]) == 0
        assert "granularity" in capsys.readouterr().out

    def test_batch(self, capsys):
        assert main(["batch", "--atoms", "64", "256"]) == 0
        out = capsys.readouterr().out
        assert "Si_64" in out and "Si_256" in out and "makespan" in out

    @pytest.mark.parametrize("policy", ["cost_aware", "naive", "all_cpu", "all_ndp"])
    def test_batch_policy_flag(self, capsys, policy):
        assert main(["batch", "--atoms", "64", "--policy", policy]) == 0
        out = capsys.readouterr().out
        assert f"scheduling policy: {policy}" in out

    def test_batch_policy_all_cpu_loses_batching_overlap(self, capsys):
        """All-CPU serializes everything on one device: the makespan
        degenerates to the serial time (speedup 1.00x), which is exactly
        the comparison the flag exists to expose."""
        assert main(["batch", "--atoms", "64", "512", "--policy", "all_cpu"]) == 0
        assert "1.00x vs serial" in capsys.readouterr().out

    def test_batch_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["batch", "--policy", "nonsense"])

    def test_serve_bench(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_serving.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--batch-sizes", "4", "8",
                    "--repeats", "1",
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "jobs/s" in out and "speedup" in out
        assert json_path.exists()

    def test_serve_bench_no_cache(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_serving.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--batch-sizes", "4",
                    "--repeats", "1",
                    "--no-cache",
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        assert "baseline (--no-cache)" in capsys.readouterr().out

    def test_serve_bench_backend_and_arrival_sweep(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "BENCH_serving.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--batch-sizes", "4",
                    "--repeats", "1",
                    "--backend", "engine",
                    "--arrival-rate", "0",
                    "--arrival-sweep", "2.0", "6.0",
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "forced simulation backend: engine" in out
        assert "latency vs offered load" in out
        assert "saturation knee" in out
        payload = json.loads(json_path.read_text())
        assert payload["backend"] == "engine"
        assert payload["points"][0]["backend_jobs"] == {"engine": 4}
        sweep = payload["arrival_sweep"]
        assert [p["rate_jobs_per_second"] for p in sweep["points"]] == [2.0, 6.0]
        assert sweep["knee_latency_factor"] > 1.0

    def test_serve_bench_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--backend", "nonsense"])

    def test_batch_admission_flags(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--atoms", "64", "128", "512", "1024",
                    "--arrival-rate", "50.0",
                    "--slo-p99", "1.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "admission (shed)" in out
        assert "lane utilization" in out

    def test_serve_bench_admission_flags(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "BENCH_serving.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--batch-sizes", "4",
                    "--repeats", "1",
                    "--slo-p99", "2.0",
                    "--admission-mode", "deprioritize",
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "admission: deprioritize past slo_p99 2 s" in out
        payload = json.loads(json_path.read_text())
        assert payload["admission"] == {
            "slo_p99": 2.0,
            "max_queue_depth": None,
            "mode": "deprioritize",
        }
        arrival = payload["points"][0]["arrival"]
        assert "shed_rate" in arrival and "lane_utilization" in arrival

    def test_admission_mode_validated(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--admission-mode", "nonsense"])

    def test_all_excludes_serve_bench(self):
        from repro.cli import _COMMANDS, _EXCLUDED_FROM_ALL

        assert "serve-bench" in _COMMANDS
        assert "serve-bench" in _EXCLUDED_FROM_ALL

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
